//! Composite: a multi-kernel workload running several applications back to
//! back on one system — optionally as a *dataflow pipeline* or an
//! *iterated solver loop*.
//!
//! The paper evaluates each RiVEC kernel in isolation; real deployments run
//! *mixes* — an option pricer feeding a solver, a filter stage after a
//! stencil, a relaxation loop sweeping the same arrays until convergence.
//! [`Composite`] models that in three flavours:
//!
//! * [`Composite::new`]: independent phases. Each phase keeps its own input
//!   data and golden reference; only cache/DRAM *timing* state is shared.
//! * [`Composite::pipelined`]: dataflow phases. An explicit binding map
//!   routes producer output buffers into consumer input buffers — by
//!   default from the immediately preceding phase, or from *any earlier*
//!   phase via [`PhaseLink::producer`]. The consumer's kernel is rebased
//!   onto the producer's output buffer (so it reads the *real* simulated
//!   data at run time), the consumer's golden reference is computed over
//!   the producer's *reference* output (chaining the scalar models), and
//!   the producer's checks on a consumed buffer are superseded by the
//!   consumer's — if the producer computes garbage, the consumer's chained
//!   checks catch it downstream.
//! * [`Composite::iterated`]: a convergence loop. One body phase is
//!   unrolled `n` times; `carry` links route each iteration's outputs into
//!   the next iteration's inputs. Instead of planning `n` buffer copies,
//!   odd iterations are concatenated with the carried input/output arrays
//!   *swapped* ([`RebaseRule::swapped`]), so a carried value ping-pongs
//!   between two physical buffers with no per-iteration copies. The scalar
//!   golden reference is iterated the same `n` times, and intermediate
//!   checks are superseded so only the converged state is validated.
//!
//! Either way the phases execute sequentially in a single program on one
//! cache-warm memory hierarchy, and one `RunReport` (with per-phase — and,
//! for iterated composites, per-iteration — breakdowns) covers the whole
//! mix.

use ava_compiler::analysis::{Arena, Severity};
use ava_compiler::{IrKernel, RebaseRule};
use ava_isa::VectorContext;
use ava_memory::MemoryHierarchy;

use crate::layout::{BufferBindings, DataLayout, PlannedLayout};
use crate::{Check, OutputValues, PhaseMark, SharedWorkload, Workload, WorkloadSetup};

/// One output→input binding: the producer phase's output buffer name and
/// the consumer phase's input buffer name. In a [`Composite::pipelined`]
/// link list for transition `i` the consumer is phase `i + 1`; the producer
/// defaults to phase `i` but may be any earlier phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseLink {
    /// Explicit producer phase index. `None` binds from the phase
    /// immediately preceding the consumer (the PR 4 behaviour); `Some(q)`
    /// binds from phase `q`, which must precede the consumer — this is how
    /// a pipeline expresses stage-crossing reuse (phase 3 reading phase
    /// 0's output). Carry links of [`Composite::iterated`] always bind
    /// from the previous iteration and must leave this `None`.
    pub producer: Option<usize>,
    /// The producer's output buffer name.
    pub output: String,
    /// The consumer's input buffer name.
    pub input: String,
}

/// Builds the link list for one phase transition from `(output, input)`
/// name pairs binding from the immediately preceding phase.
#[must_use]
pub fn links(pairs: &[(&str, &str)]) -> Vec<PhaseLink> {
    pairs
        .iter()
        .map(|(o, i)| PhaseLink {
            producer: None,
            output: (*o).to_string(),
            input: (*i).to_string(),
        })
        .collect()
}

/// Builds a link list from `(producer phase, output, input)` triples, for
/// links that name an earlier phase explicitly (backward links).
#[must_use]
pub fn links_from(triples: &[(usize, &str, &str)]) -> Vec<PhaseLink> {
    triples
        .iter()
        .map(|(q, o, i)| PhaseLink {
            producer: Some(*q),
            output: (*o).to_string(),
            input: (*i).to_string(),
        })
        .collect()
}

/// The unroll description of an iterated composite: the body runs `n`
/// times, with `carry` routing each iteration's outputs into the next
/// iteration's inputs.
#[derive(Debug, Clone)]
struct IterSpec {
    n: usize,
    carry: Vec<PhaseLink>,
}

/// A multi-kernel workload: the given phases run sequentially in one
/// simulation, sharing the memory hierarchy — and, when constructed with
/// [`Composite::pipelined`] or [`Composite::iterated`], flowing data from
/// phase to phase (or iteration to iteration).
///
/// ```
/// use std::sync::Arc;
/// use ava_workloads::{composite, Axpy, Composite, Somier, Workload};
///
/// let mix = Composite::new(vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))]);
/// assert_eq!(mix.name(), "composite");
///
/// // The same phases as a dataflow pipeline: axpy's output feeds somier's
/// // velocity array.
/// let pipe = Composite::pipelined(
///     vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))],
///     vec![composite::links(&[("y", "v")])],
/// );
/// assert_eq!(pipe.name(), "pipelined");
/// assert_eq!(
///     pipe.elements(),
///     Axpy::new(256).elements() + Somier::new(256).elements()
/// );
///
/// // A four-step relaxation: somier's position/velocity outputs carry into
/// // the next iteration's inputs, ping-ponging between two arrays.
/// let solver = Composite::iterated(
///     Arc::new(Somier::relaxation(256)),
///     4,
///     composite::links(&[("xout", "x"), ("vout", "v")]),
/// );
/// assert_eq!(solver.name(), "iterated");
/// assert_eq!(solver.iterations(), 4);
/// assert_eq!(solver.elements(), 4 * Somier::relaxation(256).elements());
/// ```
#[derive(Clone)]
pub struct Composite {
    phases: Vec<SharedWorkload>,
    /// `links[i]` binds earlier phases' outputs to phase `i + 1`'s inputs.
    links: Vec<Vec<PhaseLink>>,
    /// `Some` when this composite unrolls `phases[0]` as a solver loop.
    iterate: Option<IterSpec>,
}

impl Composite {
    /// Creates a composite of independent phases, in execution order.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    #[must_use]
    pub fn new(phases: Vec<SharedWorkload>) -> Self {
        let transitions = phases.len().saturating_sub(1);
        Self::pipelined(phases, vec![Vec::new(); transitions])
    }

    /// Creates a dataflow pipeline: `links[i]` names the `(output, input)`
    /// buffer pairs binding producer outputs to phase `i + 1`'s inputs. A
    /// link's producer defaults to phase `i` and may name any earlier phase
    /// via [`PhaseLink::producer`]. An empty link list leaves that
    /// transition independent.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, if `links` does not have exactly one
    /// entry per phase transition, or if any link repeats an earlier
    /// `(producer, output, input)` triple of the same transition, names a
    /// producer phase that does not precede the consumer, names an unknown
    /// buffer, binds the same input twice, binds a non-bindable buffer (an
    /// output), consumes a non-exposable buffer (a pure input), consumes an
    /// output an intermediate phase has already overwritten in place, or
    /// pairs buffers of different sizes.
    #[must_use]
    pub fn pipelined(phases: Vec<SharedWorkload>, links: Vec<Vec<PhaseLink>>) -> Self {
        assert!(!phases.is_empty(), "a composite needs at least one phase");
        assert_eq!(
            links.len(),
            phases.len() - 1,
            "need exactly one link list per phase transition"
        );
        for (p, transition) in links.iter().enumerate() {
            Self::check_links(&phases, transition, p + 1, p);
        }
        // Destructive consumption (an `InOut` input, or an iterated
        // consumer's carried input — see `Workload::overwrites_bound_input`)
        // rebases the consumer's writes onto the producer's array: the
        // produced values no longer exist anywhere after the consumer runs,
        // so a later backward link naming them would chain a reference the
        // simulation can never reproduce. Reject that wiring at
        // construction.
        let mut overwritten: Vec<(usize, &str)> = Vec::new();
        for (p, transition) in links.iter().enumerate() {
            for link in transition {
                let q = link.producer.unwrap_or(p);
                assert!(
                    !overwritten.contains(&(q, link.output.as_str())),
                    "output {:?} of phase {q} was overwritten in place by an \
                     earlier consumer and can no longer be linked",
                    link.output
                );
                if phases[p + 1].overwrites_bound_input(&link.input) {
                    overwritten.push((q, link.output.as_str()));
                }
            }
        }
        let composite = Self {
            phases,
            links,
            iterate: None,
        };
        composite.lint_at_construction();
        composite
    }

    /// Creates an iterated composite: `body` unrolled `n` times in one
    /// program, with `carry` routing each iteration's named outputs into
    /// the next iteration's inputs. Carried values ping-pong between the
    /// body's planned input and output arrays (odd iterations run with the
    /// two swapped via [`RebaseRule::swapped`]) — no per-iteration buffer
    /// copies, and only two physical arrays per carried buffer regardless
    /// of `n`. The golden reference is chained through all `n` iterations
    /// and only the final iteration's checks are validated.
    ///
    /// A carry link whose input is the *same* `InOut` buffer as its output
    /// (an in-place body) degenerates to a true in-place loop: no swap is
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, if any carry link sets an explicit
    /// [`PhaseLink::producer`] (iteration `k` always feeds iteration
    /// `k + 1`), if a buffer appears in more than one carry pair (the
    /// ping-pong would be ill-defined: one array cannot alternate with two
    /// partners), or if the carry links fail the same buffer checks as
    /// [`Composite::pipelined`] (unknown/duplicate/size-mismatched/
    /// non-bindable names).
    #[must_use]
    pub fn iterated(body: SharedWorkload, n: usize, carry: Vec<PhaseLink>) -> Self {
        assert!(n >= 1, "an iterated composite needs at least one iteration");
        for link in &carry {
            assert!(
                link.producer.is_none(),
                "carry link {:?} -> {:?} must not name an explicit producer: \
                 iteration k always feeds iteration k + 1",
                link.output,
                link.input
            );
        }
        // Carried buffers obey the same contract as a self-transition of a
        // pipeline (body feeding another instance of itself).
        let phases = vec![body];
        Self::check_links(&phases, &carry, 0, 0);
        // Each carry pair swaps its two arrays every odd iteration; a
        // buffer in two pairs would need two swap partners at once, so the
        // rebase map would contain overlapping rules. Reject it here by
        // name instead of panicking inside `concat_remapped` on a sweep
        // worker thread. (Checked after `check_links` so exact duplicate
        // pairs keep their more specific "duplicate link" error.)
        let mut swapped: Vec<&str> = Vec::new();
        for link in &carry {
            for name in [link.output.as_str(), link.input.as_str()] {
                assert!(
                    !swapped.contains(&name),
                    "buffer {name:?} appears in more than one carry link; \
                     a carried array can only ping-pong with one partner"
                );
            }
            swapped.push(&link.output);
            if link.input != link.output {
                swapped.push(&link.input);
            }
        }
        let composite = Self {
            phases,
            links: Vec::new(),
            iterate: Some(IterSpec { n, carry }),
        };
        composite.lint_at_construction();
        composite
    }

    /// Deny-by-default static verification at construction: the wired
    /// composite is built once (at a small MVL, against a throwaway memory
    /// hierarchy) and run through the full [`crate::analysis`] suite. Any
    /// finding at [`Severity::Warn`] or above is fatal — the known bug
    /// classes (splat before `vsetvl`, a rebase that misses its placeholder
    /// buffer, a carried array destroyed before it is read) are rejected
    /// here, before any simulation runs.
    ///
    /// # Panics
    ///
    /// Panics with the rendered diagnostic on the first warn-or-worse
    /// finding.
    fn lint_at_construction(&self) {
        let report = self.verify(16);
        let worst = report.at_least(Severity::Warn).next().cloned();
        if let Some(worst) = worst {
            panic!(
                "static analysis rejected this {} composite: {worst}",
                self.name()
            );
        }
    }

    /// Validates one transition's link list against the producer/consumer
    /// layouts. `consumer` and `default_producer` are phase indices into
    /// `phases`; for carry links both are `0` (the body feeds itself).
    fn check_links(
        phases: &[SharedWorkload],
        transition: &[PhaseLink],
        consumer: usize,
        default_producer: usize,
    ) {
        let to = phases[consumer].data_layout();
        let mut bound_inputs: Vec<&str> = Vec::new();
        let mut seen: Vec<(usize, &str, &str)> = Vec::new();
        for link in transition {
            let q = link.producer.unwrap_or(default_producer);
            assert!(
                q <= default_producer,
                "link {:?} -> {:?} into phase {consumer} names producer phase {q}, \
                 which does not precede the consumer",
                link.output,
                link.input
            );
            let triple = (q, link.output.as_str(), link.input.as_str());
            assert!(
                !seen.contains(&triple),
                "duplicate link: buffer {:?} of phase {q} is already bound to \
                 input {:?} of phase {consumer}",
                link.output,
                link.input
            );
            seen.push(triple);
            let from = phases[q].data_layout();
            let src = from.get(&link.output).unwrap_or_else(|| {
                panic!(
                    "phase {q} ({}) has no buffer named {:?}",
                    phases[q].name(),
                    link.output
                )
            });
            let dst = to.get(&link.input).unwrap_or_else(|| {
                panic!(
                    "phase {consumer} ({}) has no buffer named {:?}",
                    phases[consumer].name(),
                    link.input
                )
            });
            assert!(
                src.role.is_exposable(),
                "buffer {:?} of phase {q} is a pure input and exposes no data",
                link.output
            );
            assert!(
                dst.role.is_bindable(),
                "buffer {:?} of phase {consumer} (role {:?}) cannot be bound",
                link.input,
                dst.role
            );
            assert_eq!(
                src.elems, dst.elems,
                "cannot bind {:?} ({} elements) to {:?} ({} elements)",
                link.output, src.elems, link.input, dst.elems
            );
            assert!(
                !bound_inputs.contains(&link.input.as_str()),
                "input {:?} of phase {consumer} is bound twice",
                link.input
            );
            bound_inputs.push(&link.input);
        }
    }

    /// The phases, in execution order (the single body for an iterated
    /// composite).
    #[must_use]
    pub fn phases(&self) -> &[SharedWorkload] {
        &self.phases
    }

    /// The output→input binding map, one entry per phase transition (empty
    /// for an iterated composite — see [`Composite::carry_links`]).
    #[must_use]
    pub fn links(&self) -> &[Vec<PhaseLink>] {
        &self.links
    }

    /// The carry links of an iterated composite (empty otherwise).
    #[must_use]
    pub fn carry_links(&self) -> &[PhaseLink] {
        self.iterate.as_ref().map_or(&[], |s| &s.carry)
    }

    /// Number of times the body runs: the unroll factor for an iterated
    /// composite, `1` otherwise.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterate.as_ref().map_or(1, |s| s.n)
    }

    /// Whether any phase transition carries a data binding.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        self.links.iter().any(|l| !l.is_empty())
    }

    /// Names of the phases, in execution order ("axpy+somier" style labels
    /// for tables come from joining these).
    #[must_use]
    pub fn phase_names(&self) -> Vec<&'static str> {
        self.phases.iter().map(|p| p.name()).collect()
    }

    fn prefix(p: usize) -> String {
        format!("p{p}.")
    }

    /// Rebases an address through the first matching rule (identity when
    /// none matches) — the address-side companion of
    /// [`IrKernel::concat_remapped`], applied to checks and reference
    /// outputs so they follow the kernel onto rebased buffers.
    fn rebase_addr(rules: &[RebaseRule], addr: u64) -> u64 {
        rules.iter().find_map(|r| r.apply(addr)).unwrap_or(addr)
    }

    /// The unrolled build of an iterated composite: the body is built once
    /// per iteration (its golden reference chained through the carry
    /// links), concatenated with the ping-pong rebase map on odd
    /// iterations, and only the final iteration's checks survive.
    fn build_iterated(
        &self,
        spec: &IterSpec,
        mem: &mut MemoryHierarchy,
        ctx: &VectorContext,
        plan: &PlannedLayout,
        bindings: &BufferBindings,
    ) -> WorkloadSetup {
        let body = &self.phases[0];
        let prefix = Self::prefix(0);
        let sub = plan.subset(&prefix);

        // The ping-pong map: every carried (output, input) array pair is
        // swapped on odd iterations, so iteration k + 1 reads where
        // iteration k wrote and writes where iteration k read. An in-place
        // carry (output and input are the same InOut buffer) needs no swap.
        let mut swap: Vec<RebaseRule> = Vec::new();
        for link in &spec.carry {
            let out = sub.buffer(&link.output);
            let inp = sub.buffer(&link.input);
            if out.base != inp.base {
                swap.extend(RebaseRule::swapped(inp.base, out.base, out.bytes()));
            }
        }

        let mut kernel = IrKernel {
            name: self.name().to_string(),
            ..Default::default()
        };
        let mut phase_marks = Vec::new();
        let mut strips = 0u64;
        let mut warm_ranges = Vec::new();
        let mut prev_outputs: Vec<OutputValues> = Vec::new();
        let mut final_checks: Vec<Check> = Vec::new();

        for k in 0..spec.n {
            let mut phase_bindings = BufferBindings::none();
            // Externally-bound composite inputs (the nesting path, as in
            // the pipelined build) apply to *every* iteration: a
            // non-carried bound input is re-read from the same upstream
            // array on every pass, so every iteration's reference must
            // consume the bound values — binding only iteration 0 would
            // let later references regenerate the input and diverge from
            // the simulated dataflow.
            for buf in sub.buffers() {
                if let Some(values) = bindings.get(&format!("{prefix}{}", buf.spec.name)) {
                    phase_bindings.bind(buf.spec.name.clone(), values.to_vec());
                }
            }
            if k > 0 {
                // The carry: this iteration's reference runs on the
                // previous iteration's reference outputs. (A carried input
                // can only be externally bound when `n == 1` — the outer
                // constructor's `overwrites_bound_input` check rejects it
                // otherwise — so the carry never fights an external
                // binding here.)
                for link in &spec.carry {
                    let src = prev_outputs
                        .iter()
                        .find(|o| o.name == link.output)
                        .unwrap_or_else(|| {
                            panic!("iteration {} produced no output {:?}", k - 1, link.output)
                        });
                    phase_bindings.bind(link.input.clone(), src.values.clone());
                }
            }
            let rebase: &[RebaseRule] = if k % 2 == 1 { &swap } else { &[] };
            let part = body.build_with_bindings(mem, ctx, &sub, &phase_bindings);
            kernel.concat_remapped(&part.kernel, rebase);
            phase_marks.push(PhaseMark {
                name: format!("it{k}:{}", body.name()),
                iter: Some(k),
                ir_end: kernel.len(),
            });
            strips += part.strips;
            if k == 0 {
                // Every later iteration touches the same two physical
                // arrays per carried buffer, already covered here.
                warm_ranges.extend(part.warm_ranges);
            }
            // Intermediate checks are superseded: each iteration rewrites
            // (or parity-swaps) every output array, so only the converged
            // state — the final iteration's checks — is validated.
            final_checks = part
                .checks
                .into_iter()
                .map(|mut c| {
                    c.addr = Self::rebase_addr(rebase, c.addr);
                    c
                })
                .collect();
            prev_outputs = part
                .outputs
                .into_iter()
                .map(|mut o| {
                    o.base = Self::rebase_addr(rebase, o.base);
                    o
                })
                .collect();
        }

        let outputs = prev_outputs
            .iter()
            .map(|o| OutputValues {
                name: format!("{prefix}{}", o.name),
                base: o.base,
                values: o.values.clone(),
            })
            .collect();
        WorkloadSetup {
            kernel,
            checks: final_checks,
            strips,
            outputs,
            warm_ranges,
            phase_marks,
        }
    }
}

impl std::fmt::Debug for Composite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("Composite");
        s.field("phases", &self.phase_names());
        if let Some(spec) = &self.iterate {
            s.field("iterations", &spec.n).field("carry", &spec.carry);
        } else {
            s.field("links", &self.links);
        }
        s.finish()
    }
}

impl Workload for Composite {
    fn name(&self) -> &'static str {
        if self.iterate.is_some() {
            "iterated"
        } else if self.is_pipelined() {
            "pipelined"
        } else {
            "composite"
        }
    }

    fn domain(&self) -> &'static str {
        "multi-kernel mix"
    }

    fn elements(&self) -> usize {
        // The sweep scheduler's cost estimate: a mix costs the sum of its
        // phases (and an iterated mix runs its body n times), so composite
        // points rank ahead of their largest phase.
        self.phases.iter().map(|p| p.elements()).sum::<usize>() * self.iterations()
    }

    fn overwrites_bound_input(&self, input: &str) -> bool {
        // Resolve the phase prefix ("p1.rest", possibly nested) and
        // delegate inward.
        let Some((p, rest)) = input
            .strip_prefix('p')
            .and_then(|s| s.split_once('.'))
            .and_then(|(idx, rest)| idx.parse::<usize>().ok().map(|p| (p, rest)))
        else {
            return false;
        };
        let Some(phase) = self.phases.get(p) else {
            return false;
        };
        if let Some(spec) = &self.iterate {
            // A carried input is written by the ping-pong swap whenever a
            // second iteration exists, whatever its declared role: the
            // bound upstream buffer becomes one of the two alternating
            // arrays and the producer's values are destroyed.
            if spec.n >= 2 && spec.carry.iter().any(|l| l.input == rest) {
                return true;
            }
        }
        phase.overwrites_bound_input(rest)
    }

    fn data_layout(&self) -> DataLayout {
        // The union of the phase layouts, each phase's buffer names
        // prefixed with `p{i}.` so equal phases do not collide. An iterated
        // composite plans its body once — the unrolled iterations ping-pong
        // over the same arrays.
        let mut union = DataLayout::new();
        for (p, phase) in self.phases.iter().enumerate() {
            for spec in phase.data_layout().buffers {
                union.buffers.push(crate::layout::BufferSpec {
                    name: format!("{}{}", Self::prefix(p), spec.name),
                    elems: spec.elems,
                    role: spec.role,
                });
            }
        }
        union
    }

    fn analysis_arenas(&self, plan: &PlannedLayout) -> Vec<Arena> {
        // Recurse per phase (nested composites keep their inner markings),
        // re-prefixing arena names with the phase prefix.
        let mut arenas = Vec::new();
        for (p, phase) in self.phases.iter().enumerate() {
            let prefix = Self::prefix(p);
            let sub = plan.subset(&prefix);
            for mut a in phase.analysis_arenas(&sub) {
                a.name = format!("{prefix}{}", a.name);
                // A nested composite's `carried` marks are relative to its
                // own iteration spans, which are invisible at this level
                // (the outer phase marks cover the whole inner kernel) —
                // and the inner constructor already verified them against
                // the right spans. Keep only placeholder marks, which stay
                // valid: inner rebases are baked into the concatenated
                // kernel and never reintroduce placeholder accesses.
                a.carried = false;
                arenas.push(a);
            }
        }
        let mark = |arenas: &mut Vec<Arena>, name: &str, f: fn(&mut Arena)| {
            if let Some(a) = arenas.iter_mut().find(|a| a.name == name) {
                f(a);
            }
        };
        if let Some(spec) = &self.iterate {
            // Both ends of every carry pair ping-pong the carried value
            // (an in-place carry has one shared arena); reading either
            // after an overwrite in the same iteration destroys the carry.
            for link in &spec.carry {
                for name in [&link.output, &link.input] {
                    let full = format!("{}{}", Self::prefix(0), name);
                    mark(&mut arenas, &full, |a| a.carried = true);
                }
            }
        } else {
            // A linked consumer input is never materialised: every access
            // to it must have been rebased onto the producer's buffer, so
            // any access still landing there is the wrong-buffer-rebase
            // bug. The consumer of transition `p` is always phase `p + 1`,
            // whichever earlier phase produces the data.
            for (p, transition) in self.links.iter().enumerate() {
                for link in transition {
                    let full = format!("{}{}", Self::prefix(p + 1), link.input);
                    mark(&mut arenas, &full, |a| a.placeholder = true);
                }
            }
        }
        arenas
    }

    fn build_with_bindings(
        &self,
        mem: &mut MemoryHierarchy,
        ctx: &VectorContext,
        plan: &PlannedLayout,
        bindings: &BufferBindings,
    ) -> WorkloadSetup {
        if let Some(spec) = &self.iterate {
            return self.build_iterated(spec, mem, ctx, plan, bindings);
        }
        let mut kernel = IrKernel {
            name: self.name().to_string(),
            ..Default::default()
        };
        // Checks are held back per phase until the whole pipeline is wired:
        // a link from *any* later transition that consumes one of a phase's
        // output buffers supersedes that phase's checks on the buffer — the
        // consumer's chained checks cover it downstream.
        let mut deferred: Vec<Vec<Check>> = Vec::new();
        let mut outputs_by_phase: Vec<Vec<OutputValues>> = Vec::new();
        let mut outputs = Vec::new();
        let mut warm_ranges = Vec::new();
        let mut phase_marks = Vec::new();
        let mut strips = 0u64;

        for (p, phase) in self.phases.iter().enumerate() {
            let prefix = Self::prefix(p);
            let sub = plan.subset(&prefix);

            // Bindings for this phase: externally-bound composite inputs
            // (named with the phase prefix — the nesting path: when this
            // composite is itself a phase of an outer pipeline, the outer
            // composite binds e.g. "p0.v" and rebases our whole kernel, so
            // the forwarded values line up with the rebased reads) plus
            // the pipeline links from the producer phases' reference
            // outputs.
            let mut phase_bindings = BufferBindings::none();
            for buf in sub.buffers() {
                if let Some(values) = bindings.get(&format!("{prefix}{}", buf.spec.name)) {
                    phase_bindings.bind(buf.spec.name.clone(), values.to_vec());
                }
            }
            let mut rebase = Vec::new();
            if p > 0 {
                for link in &self.links[p - 1] {
                    let q = link.producer.unwrap_or(p - 1);
                    let src = outputs_by_phase[q]
                        .iter()
                        .find(|o| o.name == link.output)
                        .unwrap_or_else(|| {
                            panic!("phase {q} produced no output {:?}", link.output)
                        });
                    // Supersede the producer's checks on the consumed
                    // buffer: the consumer's chained reference covers it.
                    let (start, end) = src.range();
                    deferred[q].retain(|c| !(c.addr >= start && c.addr < end));
                    // The consumer's reference runs on the producer's
                    // reference output...
                    phase_bindings.bind(link.input.clone(), src.values.clone());
                    // ...and its kernel reads the producer's real output:
                    // the planned placeholder input is rebased away.
                    let dst = sub.buffer(&link.input);
                    rebase.push(RebaseRule {
                        old_base: dst.base,
                        bytes: dst.bytes(),
                        new_base: src.base,
                    });
                }
            }

            let part = phase.build_with_bindings(mem, ctx, &sub, &phase_bindings);
            kernel.concat_remapped(&part.kernel, &rebase);
            phase_marks.push(PhaseMark {
                name: format!("{p}:{}", phase.name()),
                iter: None,
                ir_end: kernel.len(),
            });
            strips += part.strips;
            warm_ranges.extend(part.warm_ranges);
            // The phase computed its checks and outputs against its planned
            // placement; addresses inside a rebased (bound) buffer follow
            // the kernel onto the upstream buffer — an in-place bound
            // output (InOut) lands in the producer's array, and its checks
            // must look there too.
            deferred.push(
                part.checks
                    .into_iter()
                    .map(|mut c| {
                        c.addr = Self::rebase_addr(&rebase, c.addr);
                        c
                    })
                    .collect(),
            );
            let rebased_outputs: Vec<OutputValues> = part
                .outputs
                .into_iter()
                .map(|mut o| {
                    o.base = Self::rebase_addr(&rebase, o.base);
                    o
                })
                .collect();
            outputs.extend(rebased_outputs.iter().map(|o| OutputValues {
                name: format!("{prefix}{}", o.name),
                base: o.base,
                values: o.values.clone(),
            }));
            outputs_by_phase.push(rebased_outputs);
        }
        let checks = deferred.into_iter().flatten().collect();

        WorkloadSetup {
            kernel,
            checks,
            strips,
            outputs,
            warm_ranges,
            phase_marks,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::{validate, ArenaPlanner, Axpy, Blackscholes, Check, Somier};

    fn mix() -> Composite {
        Composite::new(vec![
            Arc::new(Axpy::new(256)),
            Arc::new(Somier::new(256)),
            Arc::new(Blackscholes::new(64)),
        ])
    }

    fn pipeline() -> Composite {
        Composite::pipelined(
            vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))],
            vec![links(&[("y", "v")])],
        )
    }

    fn solver(n: usize, iters: usize) -> Composite {
        Composite::iterated(
            Arc::new(Somier::relaxation(n)),
            iters,
            links(&[("xout", "x"), ("vout", "v")]),
        )
    }

    /// The n-step scalar reference of the somier relaxation: returns the
    /// final positions (with halo) and velocities after `iters` explicit
    /// Euler steps, using exactly the fused operations of the kernel's
    /// golden reference so equality is bit-exact.
    fn relaxation_reference(n: usize, iters: usize) -> (Vec<f64>, Vec<f64>) {
        let mut gen = crate::data::DataGen::for_workload("somier");
        let mut x = gen.uniform_vec(n + 2, -1.0, 1.0);
        let mut v = gen.uniform_vec(n, -0.1, 0.1);
        for _ in 0..iters {
            let mut xn = x.clone();
            for j in 0..n {
                let force = 4.0 * (-2.0f64).mul_add(x[j + 1], x[j] + x[j + 2]);
                let vnew = force.mul_add(0.001, v[j]);
                xn[j + 1] = vnew.mul_add(0.001, x[j + 1]);
                v[j] = vnew;
            }
            x = xn;
        }
        (x, v)
    }

    #[test]
    fn build_concatenates_every_phase() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let composite = mix().build(&mut mem, &ctx);

        let mut mem2 = MemoryHierarchy::default();
        let parts: Vec<WorkloadSetup> = mix()
            .phases()
            .iter()
            .map(|p| p.build(&mut mem2, &ctx))
            .collect();
        assert_eq!(
            composite.kernel.len(),
            parts.iter().map(|p| p.kernel.len()).sum::<usize>()
        );
        assert_eq!(
            composite.checks.len(),
            parts.iter().map(|p| p.checks.len()).sum::<usize>()
        );
        assert_eq!(
            composite.strips,
            parts.iter().map(|p| p.strips).sum::<u64>()
        );
        // Phase marks partition the concatenated kernel.
        assert_eq!(composite.phase_marks.len(), 3);
        assert_eq!(
            composite.phase_marks.last().unwrap().ir_end,
            composite.kernel.len()
        );
        assert!(composite.phase_marks.iter().all(|m| m.iter.is_none()));
    }

    #[test]
    fn pressure_is_the_maximum_phase_not_the_sum() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let composite = mix().build(&mut mem, &ctx);
        let mut mem2 = MemoryHierarchy::default();
        let max_phase = mix()
            .phases()
            .iter()
            .map(|p| p.build(&mut mem2, &ctx).kernel.max_pressure())
            .max()
            .unwrap();
        assert_eq!(composite.kernel.max_pressure(), max_phase);
    }

    #[test]
    fn checks_validate_after_writing_expected_values() {
        // The checks of every phase coexist: writing each expected value
        // into the shared memory satisfies the whole composite.
        let mut mem = MemoryHierarchy::default();
        let setup = mix().build(&mut mem, &VectorContext::with_mvl(16));
        for c in &setup.checks {
            mem.write_f64(c.addr, c.expected);
        }
        assert!(validate(&mem, &setup.checks).is_ok());
    }

    #[test]
    fn elements_sum_phase_costs() {
        assert_eq!(
            mix().elements(),
            Axpy::new(256).elements()
                + Somier::new(256).elements()
                + Blackscholes::new(64).elements()
        );
        // An iterated mix costs its body times the unroll factor.
        assert_eq!(
            solver(256, 5).elements(),
            5 * Somier::relaxation(256).elements()
        );
    }

    #[test]
    fn pipelined_chains_the_scalar_references() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let setup = pipeline().build(&mut mem, &ctx);

        // Somier's reference velocity input must be axpy's reference
        // output, not somier's own generated data: recompute the chain by
        // hand from the two phase references.
        let axpy_y = setup.output("p0.y");
        let somier_vout = setup.output("p1.vout");
        let somier_x = {
            // Somier's positions are still its own generated data.
            let mut gen = crate::data::DataGen::for_workload("somier");
            gen.uniform_vec(256 + 2, -1.0, 1.0)
        };
        for j in 0..256 {
            let force = 4.0 * (-2.0f64).mul_add(somier_x[j + 1], somier_x[j] + somier_x[j + 2]);
            let expected = force.mul_add(0.001, axpy_y.values[j]);
            assert_eq!(somier_vout.values[j], expected, "element {j}");
        }
    }

    #[test]
    fn pipelined_supersedes_consumed_intermediate_checks() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let piped = pipeline().build(&mut mem, &ctx);
        // Axpy's 256 y-checks are consumed by somier and superseded; the
        // somier checks (2 per node) survive.
        assert_eq!(piped.checks.len(), 2 * 256);
        let (y_start, y_end) = piped.output("p0.y").range();
        assert!(piped
            .checks
            .iter()
            .all(|c| c.addr < y_start || c.addr >= y_end));
    }

    #[test]
    fn pipelined_rebases_the_consumer_onto_the_producer() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let piped = pipeline().build(&mut mem, &ctx);
        let y = piped.output("p0.y");
        let (y_start, y_end) = y.range();
        // Somier's velocity loads now target axpy's y buffer...
        let somier_range = piped.phase_marks[0].ir_end..piped.phase_marks[1].ir_end;
        let reads_y = piped.kernel.instrs[somier_range]
            .iter()
            .filter(|i| {
                i.opcode == ava_isa::Opcode::VLoad
                    && i.mem.is_some_and(|m| m.base >= y_start && m.base < y_end)
            })
            .count();
        assert!(reads_y > 0, "somier must read axpy's output buffer");
        // ...and the dead placeholder input is not warmed.
        let mut mem2 = MemoryHierarchy::default();
        let plan = crate::ArenaPlanner::new().plan(&mut mem2, &pipeline().data_layout());
        let placeholder = plan.buffer("p1.v").range();
        assert!(!piped.warm_ranges.contains(&placeholder));
        // The placeholder exists in the plan but no kernel access targets it.
        assert!(piped.kernel.instrs.iter().all(|i| i
            .mem
            .is_none_or(|m| m.base < placeholder.0 || m.base >= placeholder.1)));
    }

    #[test]
    fn unpipelined_and_pipelined_references_differ() {
        // The chained reference is genuinely different from the independent
        // one: somier fed by axpy computes different velocities than somier
        // on its own generated data.
        let ctx = VectorContext::with_mvl(16);
        let mut mem1 = MemoryHierarchy::default();
        let piped = pipeline().build(&mut mem1, &ctx);
        let mut mem2 = MemoryHierarchy::default();
        let plain = Composite::new(vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))])
            .build(&mut mem2, &ctx);
        assert_ne!(
            piped.output("p1.vout").values,
            plain.output("p1.vout").values
        );
    }

    #[test]
    fn broken_chain_fails_validation() {
        // Writing the *independent* somier expectations into memory must
        // not satisfy the pipelined checks: the chain changed them.
        let ctx = VectorContext::with_mvl(16);
        let mut mem = MemoryHierarchy::default();
        let piped = pipeline().build(&mut mem, &ctx);
        let mut mem2 = MemoryHierarchy::default();
        let plain = Composite::new(vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))])
            .build(&mut mem2, &ctx);
        let plain_by_addr: Vec<Check> = plain.checks;
        for c in &plain_by_addr {
            mem.write_f64(c.addr, c.expected);
        }
        assert!(validate(&mem, &piped.checks).is_err());
    }

    #[test]
    fn backward_links_chain_from_any_earlier_phase() {
        // Phase 2 (somier) reads phase 0's (axpy's) output across the
        // intermediate blackscholes stage: the reference must chain from
        // phase 0, exactly as a consecutive link would.
        let chained = Composite::pipelined(
            vec![
                Arc::new(Axpy::new(256)),
                Arc::new(Blackscholes::new(64)),
                Arc::new(Somier::new(256)),
            ],
            vec![Vec::new(), links_from(&[(0, "y", "v")])],
        );
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let setup = chained.build(&mut mem, &ctx);

        let axpy_y = setup.output("p0.y");
        let somier_vout = setup.output("p2.vout");
        let somier_x = {
            let mut gen = crate::data::DataGen::for_workload("somier");
            gen.uniform_vec(256 + 2, -1.0, 1.0)
        };
        for j in 0..256 {
            let force = 4.0 * (-2.0f64).mul_add(somier_x[j + 1], somier_x[j] + somier_x[j + 2]);
            let expected = force.mul_add(0.001, axpy_y.values[j]);
            assert_eq!(somier_vout.values[j], expected, "element {j}");
        }
        // The consumed y checks are superseded even though they belong to a
        // non-adjacent producer.
        let (ys, ye) = axpy_y.range();
        assert!(setup.checks.iter().all(|c| c.addr < ys || c.addr >= ye));
        // And somier's velocity loads were rebased onto axpy's buffer.
        assert!(setup
            .kernel
            .instrs
            .iter()
            .any(|i| i.opcode == ava_isa::Opcode::VLoad
                && i.mem.is_some_and(|m| m.base >= ys && m.base < ye)));
    }

    #[test]
    fn iterated_matches_the_iterated_scalar_reference_bit_exactly() {
        for iters in [1, 3, 4] {
            let mut mem = MemoryHierarchy::default();
            let setup = solver(128, iters).build(&mut mem, &VectorContext::with_mvl(16));
            let (x_ref, v_ref) = relaxation_reference(128, iters);
            assert_eq!(setup.output("p0.xout").values, x_ref, "{iters} iterations");
            assert_eq!(setup.output("p0.vout").values, v_ref, "{iters} iterations");
            // Only the converged state is validated: the final iteration's
            // checks, nothing from intermediate iterations.
            assert_eq!(setup.checks.len(), 2 * 128 + 2, "{iters} iterations");
            // Phase marks carry the iteration index.
            assert_eq!(setup.phase_marks.len(), iters);
            for (k, mark) in setup.phase_marks.iter().enumerate() {
                assert_eq!(mark.iter, Some(k));
                assert_eq!(mark.name, format!("it{k}:somier"));
            }
        }
    }

    #[test]
    fn iterated_ping_pongs_between_the_two_physical_arrays() {
        let n = 64;
        let mut mem = MemoryHierarchy::default();
        let plan = ArenaPlanner::new().plan(&mut mem, &solver(n, 1).data_layout());
        let x = plan.buffer("p0.x").range();
        let xout = plan.buffer("p0.xout").range();

        for iters in [1, 2, 3, 4] {
            let mut mem = MemoryHierarchy::default();
            let setup = solver(n, iters).build(&mut mem, &VectorContext::with_mvl(16));
            // The final iteration (index iters - 1) writes the planned xout
            // array when its index is even, the planned x array when odd.
            let expected = if (iters - 1) % 2 == 0 { xout } else { x };
            let out = setup.output("p0.xout");
            assert_eq!(
                (out.base, out.base + (out.values.len() * 8) as u64),
                expected,
                "{iters} iterations must converge in the {} array",
                if (iters - 1) % 2 == 0 { "xout" } else { "x" }
            );
            // No copies: only the two arrays are ever stored to for the
            // carried positions, alternating by iteration parity.
            for (k, mark) in setup.phase_marks.iter().enumerate() {
                let start = if k == 0 {
                    0
                } else {
                    setup.phase_marks[k - 1].ir_end
                };
                let writes_xout = setup.kernel.instrs[start..mark.ir_end]
                    .iter()
                    .filter(|i| i.opcode == ava_isa::Opcode::VStore)
                    .filter_map(|i| i.mem)
                    .filter(|m| m.base >= xout.0 && m.base < xout.1)
                    .count();
                let writes_x = setup.kernel.instrs[start..mark.ir_end]
                    .iter()
                    .filter(|i| i.opcode == ava_isa::Opcode::VStore)
                    .filter_map(|i| i.mem)
                    .filter(|m| m.base >= x.0 && m.base < x.1)
                    .count();
                if k % 2 == 0 {
                    assert!(writes_xout > 0 && writes_x == 0, "iteration {k}");
                } else {
                    assert!(writes_x > 0 && writes_xout == 0, "iteration {k}");
                }
            }
        }
    }

    #[test]
    fn single_iteration_matches_the_plain_body() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let one = solver(128, 1).build(&mut mem, &ctx);
        let mut mem2 = MemoryHierarchy::default();
        let plain = Somier::relaxation(128).build(&mut mem2, &ctx);
        assert_eq!(one.kernel.len(), plain.kernel.len());
        assert_eq!(one.checks, plain.checks);
        assert_eq!(one.strips, plain.strips);
        assert_eq!(one.output("p0.vout").values, plain.output("vout").values);
    }

    #[test]
    fn in_place_carry_needs_no_swap() {
        // Axpy's y is InOut: carrying y -> y iterates truly in place. The
        // reference must still chain (y_k = a * x + y_{k-1}).
        let iterated = Composite::iterated(Arc::new(Axpy::new(64)), 3, links(&[("y", "y")]));
        let mut mem = MemoryHierarchy::default();
        let setup = iterated.build(&mut mem, &VectorContext::with_mvl(16));
        let mut gen = crate::data::DataGen::for_workload("axpy");
        let x = gen.uniform_vec(64, -1.0, 1.0);
        let mut y = gen.uniform_vec(64, -1.0, 1.0);
        for _ in 0..3 {
            for j in 0..64 {
                y[j] = 1.75f64.mul_add(x[j], y[j]);
            }
        }
        assert_eq!(setup.output("p0.y").values, y);
        // All three iterations write the same physical array.
        let plan =
            ArenaPlanner::new().plan(&mut MemoryHierarchy::default(), &iterated.data_layout());
        assert_eq!(setup.output("p0.y").base, plan.addr("p0.y"));
    }

    #[test]
    fn nested_pipelined_composites_chain_through_the_outer_links() {
        // Outer pipeline: axpy feeds a nested pipeline (somier → axpy)
        // through the inner composite's prefixed buffer name "p0.v". The
        // outer composite forwards the bound values inward and rebases the
        // whole inner kernel, so the nesting path lines up end to end.
        let n = 128;
        let inner: SharedWorkload = Arc::new(Composite::pipelined(
            vec![Arc::new(Somier::new(n)), Arc::new(Axpy::new(n))],
            vec![links(&[("xout", "x"), ("vout", "y")])],
        ));
        let outer = Composite::pipelined(
            vec![Arc::new(Axpy::new(n)), inner],
            vec![links(&[("y", "p0.v")])],
        );
        let mut mem = MemoryHierarchy::default();
        let setup = outer.build(&mut mem, &VectorContext::with_mvl(16));

        // The chained reference: the inner somier's velocity input is the
        // outer axpy's reference output.
        let axpy_y = setup.output("p0.y");
        let somier_vout = setup.output("p1.p0.vout");
        let somier_x = {
            let mut gen = crate::data::DataGen::for_workload("somier");
            gen.uniform_vec(n + 2, -1.0, 1.0)
        };
        for j in 0..n {
            let force = 4.0 * (-2.0f64).mul_add(somier_x[j + 1], somier_x[j] + somier_x[j + 2]);
            let expected = force.mul_add(0.001, axpy_y.values[j]);
            assert_eq!(somier_vout.values[j], expected, "element {j}");
        }
        // The inner somier's velocity loads were rebased (by the outer
        // composite) onto the outer axpy's y buffer.
        let (ys, ye) = axpy_y.range();
        assert!(setup
            .kernel
            .instrs
            .iter()
            .any(|i| i.opcode == ava_isa::Opcode::VLoad
                && i.mem.is_some_and(|m| m.base >= ys && m.base < ye)));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_composite_is_rejected() {
        let _ = Composite::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "no buffer named \"nope\"")]
    fn unknown_link_names_are_rejected() {
        let _ = Composite::pipelined(
            vec![Arc::new(Axpy::new(64)), Arc::new(Somier::new(64))],
            vec![links(&[("nope", "v")])],
        );
    }

    #[test]
    #[should_panic(expected = "cannot bind")]
    fn size_mismatched_links_are_rejected() {
        // Axpy's 64-element output cannot feed somier's 66-element halo
        // position array.
        let _ = Composite::pipelined(
            vec![Arc::new(Axpy::new(64)), Arc::new(Somier::new(64))],
            vec![links(&[("y", "x")])],
        );
    }

    #[test]
    #[should_panic(expected = "cannot be bound")]
    fn internal_buffers_are_rejected_at_construction() {
        // ParticleFilter's gather indices derive from its positions; a link
        // onto them must fail in the constructor, not mid-sweep.
        let _ = Composite::pipelined(
            vec![
                Arc::new(Axpy::new(64)),
                Arc::new(crate::ParticleFilter::new(64, 8)),
            ],
            vec![links(&[("y", "idx")])],
        );
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bound_inputs_are_rejected() {
        let _ = Composite::pipelined(
            vec![Arc::new(Somier::new(64)), Arc::new(Axpy::new(64))],
            vec![links(&[("xout", "x"), ("vout", "x")])],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate link: buffer \"y\"")]
    fn duplicate_link_pairs_are_rejected_with_the_buffer_name() {
        // A repeated (output, input) pair used to surface only as an opaque
        // overlapping-RebaseRule panic deep inside concat_remapped; the
        // constructor now names the offending buffer.
        let _ = Composite::pipelined(
            vec![Arc::new(Axpy::new(64)), Arc::new(Somier::new(64))],
            vec![links(&[("y", "v"), ("y", "v")])],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate link: buffer \"xout\"")]
    fn duplicate_carry_pairs_are_rejected() {
        let _ = Composite::iterated(
            Arc::new(Somier::relaxation(64)),
            2,
            links(&[("xout", "x"), ("xout", "x")]),
        );
    }

    #[test]
    #[should_panic(expected = "appears in more than one carry link")]
    fn carry_buffers_with_two_swap_partners_are_rejected() {
        // One output fanned into two inputs passes the duplicate-pair and
        // bound-twice checks but would build overlapping ping-pong rules;
        // the constructor must name the buffer instead of panicking inside
        // concat_remapped on a sweep worker thread. Somier's relaxation
        // xout matches both x (halo-sized) and... nothing else, so use
        // axpy, whose x and y are both n-sized.
        let _ = Composite::iterated(Arc::new(Axpy::new(64)), 2, links(&[("y", "x"), ("y", "y")]));
    }

    #[test]
    fn external_bindings_apply_to_every_iteration() {
        // Outer pipeline binding a NON-carried input of an iterated
        // composite: the kernel re-reads the producer's (constant) array
        // on every iteration, so every iteration's golden reference must
        // consume the bound values — not just iteration 0's.
        let n = 64;
        let inner: SharedWorkload = Arc::new(Composite::iterated(
            Arc::new(Somier::relaxation(n)),
            2,
            links(&[("xout", "x")]), // x carried; v deliberately NOT
        ));
        let outer = Composite::pipelined(
            vec![Arc::new(Axpy::new(n)), inner],
            vec![links(&[("y", "p0.v")])],
        );
        let mut mem = MemoryHierarchy::default();
        let setup = outer.build(&mut mem, &VectorContext::with_mvl(16));
        let y = setup.output("p0.y").values.clone();

        // Hand-step the true dataflow: positions carry, velocities are
        // re-read from axpy's y output on every iteration.
        let mut gen = crate::data::DataGen::for_workload("somier");
        let mut x = gen.uniform_vec(n + 2, -1.0, 1.0);
        let mut vout = vec![0.0; n];
        for _ in 0..2 {
            let mut xn = x.clone();
            for j in 0..n {
                let force = 4.0 * (-2.0f64).mul_add(x[j + 1], x[j] + x[j + 2]);
                let vnew = force.mul_add(0.001, y[j]);
                xn[j + 1] = vnew.mul_add(0.001, x[j + 1]);
                vout[j] = vnew;
            }
            x = xn;
        }
        assert_eq!(setup.output("p1.p0.vout").values, vout);
        assert_eq!(setup.output("p1.p0.xout").values, x);
    }

    #[test]
    #[should_panic(expected = "does not precede the consumer")]
    fn forward_producer_indices_are_rejected() {
        let _ = Composite::pipelined(
            vec![
                Arc::new(Axpy::new(64)),
                Arc::new(Somier::new(64)),
                Arc::new(Axpy::new(64)),
            ],
            vec![Vec::new(), links_from(&[(2, "y", "x")])],
        );
    }

    #[test]
    #[should_panic(expected = "overwritten in place")]
    fn consuming_an_overwritten_output_is_rejected() {
        // Phase 1 consumes axpy's y in place (InOut), destroying the
        // produced values; phase 2's backward link onto them must fail at
        // construction.
        let _ = Composite::pipelined(
            vec![
                Arc::new(Somier::new(64)),
                Arc::new(Axpy::new(64)),
                Arc::new(Axpy::new(64)),
            ],
            vec![links(&[("vout", "y")]), links_from(&[(0, "vout", "y")])],
        );
    }

    #[test]
    #[should_panic(expected = "overwritten in place")]
    fn consuming_an_output_destroyed_by_an_iterated_consumer_is_rejected() {
        // The iterated middle phase carries "v" (declared role: plain
        // Input), so its odd iterations write into whatever array the
        // outer link rebases "p0.v" onto — destroying axpy's produced y
        // values. A later backward link onto them must fail at
        // construction, not as a confusing validation failure mid-sweep.
        let middle: SharedWorkload = Arc::new(Composite::iterated(
            Arc::new(Somier::relaxation(64)),
            2,
            links(&[("xout", "x"), ("vout", "v")]),
        ));
        let _ = Composite::pipelined(
            vec![Arc::new(Axpy::new(64)), middle, Arc::new(Axpy::new(64))],
            vec![links(&[("y", "p0.v")]), links_from(&[(0, "y", "y")])],
        );
    }

    #[test]
    fn single_iteration_consumers_do_not_destroy_bound_inputs() {
        // With n = 1 there is no ping-pong write, so the same wiring is
        // legal: the producer's output survives for the backward link.
        let middle: SharedWorkload = Arc::new(Composite::iterated(
            Arc::new(Somier::relaxation(64)),
            1,
            links(&[("xout", "x"), ("vout", "v")]),
        ));
        let piped = Composite::pipelined(
            vec![Arc::new(Axpy::new(64)), middle, Arc::new(Axpy::new(64))],
            vec![links(&[("y", "p0.v")]), links_from(&[(0, "y", "y")])],
        );
        // And the wiring genuinely builds and validates its own checks.
        let mut mem = MemoryHierarchy::default();
        let setup = piped.build(&mut mem, &VectorContext::with_mvl(16));
        for c in &setup.checks {
            mem.write_f64(c.addr, c.expected);
        }
        assert!(validate(&mem, &setup.checks).is_ok());
    }

    #[test]
    #[should_panic(expected = "must not name an explicit producer")]
    fn explicit_producers_in_carry_links_are_rejected() {
        let _ = Composite::iterated(
            Arc::new(Somier::relaxation(64)),
            2,
            links_from(&[(0, "xout", "x")]),
        );
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_are_rejected() {
        let _ = Composite::iterated(Arc::new(Somier::relaxation(64)), 0, Vec::new());
    }

    #[test]
    #[should_panic(expected = "pure input")]
    fn consuming_a_pure_input_is_rejected() {
        let _ = Composite::pipelined(
            vec![Arc::new(Axpy::new(64)), Arc::new(Somier::new(64))],
            vec![links(&[("x", "v")])],
        );
    }
}
