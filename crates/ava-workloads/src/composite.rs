//! Composite: a multi-kernel workload running several applications back to
//! back on one system — optionally as a *dataflow pipeline*.
//!
//! The paper evaluates each RiVEC kernel in isolation; real deployments run
//! *mixes* — an option pricer feeding a solver, a filter stage after a
//! stencil. [`Composite`] models that in two flavours:
//!
//! * [`Composite::new`]: independent phases. Each phase keeps its own input
//!   data and golden reference; only cache/DRAM *timing* state is shared.
//! * [`Composite::pipelined`]: dataflow phases. An explicit binding map
//!   routes each phase's declared output buffers into the next phase's
//!   declared inputs: the consumer's kernel is rebased onto the producer's
//!   output buffer (so it reads the *real* simulated data at run time), the
//!   consumer's golden reference is computed over the producer's *reference*
//!   output (chaining the scalar models), and the producer's checks on a
//!   consumed buffer are superseded by the consumer's — if the producer
//!   computes garbage, the consumer's chained checks catch it downstream.
//!
//! Either way the phases execute sequentially in a single program on one
//! cache-warm memory hierarchy, and one `RunReport` (with per-phase
//! breakdowns) covers the whole mix.

use ava_compiler::{IrKernel, RebaseRule};
use ava_isa::VectorContext;
use ava_memory::MemoryHierarchy;

use crate::layout::{BufferBindings, DataLayout, PlannedLayout};
use crate::{OutputValues, PhaseMark, SharedWorkload, Workload, WorkloadSetup};

/// One output→input binding between two consecutive phases: the producer
/// phase's output buffer name and the consumer phase's input buffer name.
pub type PhaseLink = (String, String);

/// Builds the link list for one phase transition from `(output, input)`
/// name pairs.
#[must_use]
pub fn links(pairs: &[(&str, &str)]) -> Vec<PhaseLink> {
    pairs
        .iter()
        .map(|(o, i)| ((*o).to_string(), (*i).to_string()))
        .collect()
}

/// A multi-kernel workload: the given phases run sequentially in one
/// simulation, sharing the memory hierarchy — and, when constructed with
/// [`Composite::pipelined`], flowing data from each phase to the next.
///
/// ```
/// use std::sync::Arc;
/// use ava_workloads::{composite, Axpy, Composite, Somier, Workload};
///
/// let mix = Composite::new(vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))]);
/// assert_eq!(mix.name(), "composite");
///
/// // The same phases as a dataflow pipeline: axpy's output feeds somier's
/// // velocity array.
/// let pipe = Composite::pipelined(
///     vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))],
///     vec![composite::links(&[("y", "v")])],
/// );
/// assert_eq!(pipe.name(), "pipelined");
/// assert_eq!(
///     pipe.elements(),
///     Axpy::new(256).elements() + Somier::new(256).elements()
/// );
/// ```
#[derive(Clone)]
pub struct Composite {
    phases: Vec<SharedWorkload>,
    /// `links[i]` binds phase `i`'s outputs to phase `i + 1`'s inputs.
    links: Vec<Vec<PhaseLink>>,
}

impl Composite {
    /// Creates a composite of independent phases, in execution order.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    #[must_use]
    pub fn new(phases: Vec<SharedWorkload>) -> Self {
        let transitions = phases.len().saturating_sub(1);
        Self::pipelined(phases, vec![Vec::new(); transitions])
    }

    /// Creates a dataflow pipeline: `links[i]` names the `(output, input)`
    /// buffer pairs binding phase `i`'s outputs to phase `i + 1`'s inputs.
    /// An empty link list leaves that transition independent.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, if `links` does not have exactly one
    /// entry per phase transition, or if any link names an unknown buffer,
    /// binds the same input twice, binds a non-bindable buffer (an output),
    /// consumes a non-exposable buffer (a pure input), or pairs buffers of
    /// different sizes.
    #[must_use]
    pub fn pipelined(phases: Vec<SharedWorkload>, links: Vec<Vec<PhaseLink>>) -> Self {
        assert!(!phases.is_empty(), "a composite needs at least one phase");
        assert_eq!(
            links.len(),
            phases.len() - 1,
            "need exactly one link list per phase transition"
        );
        for (p, transition) in links.iter().enumerate() {
            let from = phases[p].data_layout();
            let to = phases[p + 1].data_layout();
            let mut bound_inputs: Vec<&str> = Vec::new();
            for (out_name, in_name) in transition {
                let src = from.get(out_name).unwrap_or_else(|| {
                    panic!(
                        "phase {p} ({}) has no buffer named {out_name:?}",
                        phases[p].name()
                    )
                });
                let dst = to.get(in_name).unwrap_or_else(|| {
                    panic!(
                        "phase {} ({}) has no buffer named {in_name:?}",
                        p + 1,
                        phases[p + 1].name()
                    )
                });
                assert!(
                    src.role.is_exposable(),
                    "buffer {out_name:?} of phase {p} is a pure input and exposes no data"
                );
                assert!(
                    dst.role.is_bindable(),
                    "buffer {in_name:?} of phase {} (role {:?}) cannot be bound",
                    p + 1,
                    dst.role
                );
                assert_eq!(
                    src.elems, dst.elems,
                    "cannot bind {out_name:?} ({} elements) to {in_name:?} ({} elements)",
                    src.elems, dst.elems
                );
                assert!(
                    !bound_inputs.contains(&in_name.as_str()),
                    "input {in_name:?} of phase {} is bound twice",
                    p + 1
                );
                bound_inputs.push(in_name);
            }
        }
        Self { phases, links }
    }

    /// The phases, in execution order.
    #[must_use]
    pub fn phases(&self) -> &[SharedWorkload] {
        &self.phases
    }

    /// The output→input binding map, one entry per phase transition.
    #[must_use]
    pub fn links(&self) -> &[Vec<PhaseLink>] {
        &self.links
    }

    /// Whether any phase transition carries a data binding.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        self.links.iter().any(|l| !l.is_empty())
    }

    /// Names of the phases, in execution order ("axpy+somier" style labels
    /// for tables come from joining these).
    #[must_use]
    pub fn phase_names(&self) -> Vec<&'static str> {
        self.phases.iter().map(|p| p.name()).collect()
    }

    fn prefix(p: usize) -> String {
        format!("p{p}.")
    }
}

impl std::fmt::Debug for Composite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Composite")
            .field("phases", &self.phase_names())
            .field("links", &self.links)
            .finish()
    }
}

impl Workload for Composite {
    fn name(&self) -> &'static str {
        if self.is_pipelined() {
            "pipelined"
        } else {
            "composite"
        }
    }

    fn domain(&self) -> &'static str {
        "multi-kernel mix"
    }

    fn elements(&self) -> usize {
        // The sweep scheduler's cost estimate: a mix costs the sum of its
        // phases (pipelined or not), so composite points rank ahead of
        // their largest phase.
        self.phases.iter().map(|p| p.elements()).sum()
    }

    fn data_layout(&self) -> DataLayout {
        // The union of the phase layouts, each phase's buffer names
        // prefixed with `p{i}.` so equal phases do not collide.
        let mut union = DataLayout::new();
        for (p, phase) in self.phases.iter().enumerate() {
            for spec in phase.data_layout().buffers {
                union.buffers.push(crate::layout::BufferSpec {
                    name: format!("{}{}", Self::prefix(p), spec.name),
                    elems: spec.elems,
                    role: spec.role,
                });
            }
        }
        union
    }

    fn build_with_bindings(
        &self,
        mem: &mut MemoryHierarchy,
        ctx: &VectorContext,
        plan: &PlannedLayout,
        bindings: &BufferBindings,
    ) -> WorkloadSetup {
        let mut kernel = IrKernel {
            name: self.name().to_string(),
            ..Default::default()
        };
        let mut checks = Vec::new();
        // The previous phase's checks are held back one phase: if the next
        // transition consumes one of its output buffers, the checks on that
        // buffer are superseded by the consumer's chained checks.
        let mut pending = Vec::new();
        let mut prev_outputs: Vec<OutputValues> = Vec::new();
        let mut outputs = Vec::new();
        let mut warm_ranges = Vec::new();
        let mut phase_marks = Vec::new();
        let mut strips = 0u64;

        for (p, phase) in self.phases.iter().enumerate() {
            let prefix = Self::prefix(p);
            let sub = plan.subset(&prefix);

            // Bindings for this phase: externally-bound composite inputs
            // (named with the phase prefix — the nesting path: when this
            // composite is itself a phase of an outer pipeline, the outer
            // composite binds e.g. "p0.v" and rebases our whole kernel, so
            // the forwarded values line up with the rebased reads) plus
            // the pipeline links from the previous phase's reference
            // outputs.
            let mut phase_bindings = BufferBindings::none();
            for buf in sub.buffers() {
                if let Some(values) = bindings.get(&format!("{prefix}{}", buf.spec.name)) {
                    phase_bindings.bind(buf.spec.name.clone(), values.to_vec());
                }
            }
            let mut rebase = Vec::new();
            if p > 0 {
                for (out_name, in_name) in &self.links[p - 1] {
                    let src = prev_outputs
                        .iter()
                        .find(|o| &o.name == out_name)
                        .unwrap_or_else(|| {
                            panic!("phase {} produced no output {out_name:?}", p - 1)
                        });
                    // Supersede the producer's checks on the consumed
                    // buffer: the consumer's chained reference covers it.
                    let (start, end) = src.range();
                    pending.retain(|c: &crate::Check| !(c.addr >= start && c.addr < end));
                    // The consumer's reference runs on the producer's
                    // reference output...
                    phase_bindings.bind(in_name.clone(), src.values.clone());
                    // ...and its kernel reads the producer's real output:
                    // the planned placeholder input is rebased away.
                    let dst = sub.buffer(in_name);
                    rebase.push(RebaseRule {
                        old_base: dst.base,
                        bytes: dst.bytes(),
                        new_base: src.base,
                    });
                }
            }
            checks.append(&mut pending);

            let part = phase.build_with_bindings(mem, ctx, &sub, &phase_bindings);
            kernel.concat_remapped(&part.kernel, &rebase);
            phase_marks.push(PhaseMark {
                name: format!("{p}:{}", phase.name()),
                ir_end: kernel.len(),
            });
            strips += part.strips;
            warm_ranges.extend(part.warm_ranges);
            // The phase computed its checks and outputs against its planned
            // placement; addresses inside a rebased (bound) buffer follow
            // the kernel onto the upstream buffer — an in-place bound
            // output (InOut) lands in the producer's array, and its checks
            // must look there too.
            let rebase_addr = |addr: u64| rebase.iter().find_map(|r| r.apply(addr)).unwrap_or(addr);
            pending = part
                .checks
                .into_iter()
                .map(|mut c| {
                    c.addr = rebase_addr(c.addr);
                    c
                })
                .collect();
            prev_outputs = part
                .outputs
                .into_iter()
                .map(|mut o| {
                    o.base = rebase_addr(o.base);
                    o
                })
                .collect();
            outputs.extend(prev_outputs.iter().map(|o| OutputValues {
                name: format!("{prefix}{}", o.name),
                base: o.base,
                values: o.values.clone(),
            }));
        }
        checks.append(&mut pending);

        WorkloadSetup {
            kernel,
            checks,
            strips,
            outputs,
            warm_ranges,
            phase_marks,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::{validate, Axpy, Blackscholes, Check, Somier};

    fn mix() -> Composite {
        Composite::new(vec![
            Arc::new(Axpy::new(256)),
            Arc::new(Somier::new(256)),
            Arc::new(Blackscholes::new(64)),
        ])
    }

    fn pipeline() -> Composite {
        Composite::pipelined(
            vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))],
            vec![links(&[("y", "v")])],
        )
    }

    #[test]
    fn build_concatenates_every_phase() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let composite = mix().build(&mut mem, &ctx);

        let mut mem2 = MemoryHierarchy::default();
        let parts: Vec<WorkloadSetup> = mix()
            .phases()
            .iter()
            .map(|p| p.build(&mut mem2, &ctx))
            .collect();
        assert_eq!(
            composite.kernel.len(),
            parts.iter().map(|p| p.kernel.len()).sum::<usize>()
        );
        assert_eq!(
            composite.checks.len(),
            parts.iter().map(|p| p.checks.len()).sum::<usize>()
        );
        assert_eq!(
            composite.strips,
            parts.iter().map(|p| p.strips).sum::<u64>()
        );
        // Phase marks partition the concatenated kernel.
        assert_eq!(composite.phase_marks.len(), 3);
        assert_eq!(
            composite.phase_marks.last().unwrap().ir_end,
            composite.kernel.len()
        );
    }

    #[test]
    fn pressure_is_the_maximum_phase_not_the_sum() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let composite = mix().build(&mut mem, &ctx);
        let mut mem2 = MemoryHierarchy::default();
        let max_phase = mix()
            .phases()
            .iter()
            .map(|p| p.build(&mut mem2, &ctx).kernel.max_pressure())
            .max()
            .unwrap();
        assert_eq!(composite.kernel.max_pressure(), max_phase);
    }

    #[test]
    fn checks_validate_after_writing_expected_values() {
        // The checks of every phase coexist: writing each expected value
        // into the shared memory satisfies the whole composite.
        let mut mem = MemoryHierarchy::default();
        let setup = mix().build(&mut mem, &VectorContext::with_mvl(16));
        for c in &setup.checks {
            mem.write_f64(c.addr, c.expected);
        }
        assert!(validate(&mem, &setup.checks).is_ok());
    }

    #[test]
    fn elements_sum_phase_costs() {
        assert_eq!(
            mix().elements(),
            Axpy::new(256).elements()
                + Somier::new(256).elements()
                + Blackscholes::new(64).elements()
        );
    }

    #[test]
    fn pipelined_chains_the_scalar_references() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let setup = pipeline().build(&mut mem, &ctx);

        // Somier's reference velocity input must be axpy's reference
        // output, not somier's own generated data: recompute the chain by
        // hand from the two phase references.
        let axpy_y = setup.output("p0.y");
        let somier_vout = setup.output("p1.vout");
        let somier_x = {
            // Somier's positions are still its own generated data.
            let mut gen = crate::data::DataGen::for_workload("somier");
            gen.uniform_vec(256 + 2, -1.0, 1.0)
        };
        for j in 0..256 {
            let force = 4.0 * (-2.0f64).mul_add(somier_x[j + 1], somier_x[j] + somier_x[j + 2]);
            let expected = force.mul_add(0.001, axpy_y.values[j]);
            assert_eq!(somier_vout.values[j], expected, "element {j}");
        }
    }

    #[test]
    fn pipelined_supersedes_consumed_intermediate_checks() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let piped = pipeline().build(&mut mem, &ctx);
        // Axpy's 256 y-checks are consumed by somier and superseded; the
        // somier checks (2 per node) survive.
        assert_eq!(piped.checks.len(), 2 * 256);
        let (y_start, y_end) = piped.output("p0.y").range();
        assert!(piped
            .checks
            .iter()
            .all(|c| c.addr < y_start || c.addr >= y_end));
    }

    #[test]
    fn pipelined_rebases_the_consumer_onto_the_producer() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let piped = pipeline().build(&mut mem, &ctx);
        let y = piped.output("p0.y");
        let (y_start, y_end) = y.range();
        // Somier's velocity loads now target axpy's y buffer...
        let somier_range = piped.phase_marks[0].ir_end..piped.phase_marks[1].ir_end;
        let reads_y = piped.kernel.instrs[somier_range]
            .iter()
            .filter(|i| {
                i.opcode == ava_isa::Opcode::VLoad
                    && i.mem.is_some_and(|m| m.base >= y_start && m.base < y_end)
            })
            .count();
        assert!(reads_y > 0, "somier must read axpy's output buffer");
        // ...and the dead placeholder input is not warmed.
        let mut mem2 = MemoryHierarchy::default();
        let plan = crate::ArenaPlanner::new().plan(&mut mem2, &pipeline().data_layout());
        let placeholder = plan.buffer("p1.v").range();
        assert!(!piped.warm_ranges.contains(&placeholder));
        // The placeholder exists in the plan but no kernel access targets it.
        assert!(piped.kernel.instrs.iter().all(|i| i
            .mem
            .is_none_or(|m| m.base < placeholder.0 || m.base >= placeholder.1)));
    }

    #[test]
    fn unpipelined_and_pipelined_references_differ() {
        // The chained reference is genuinely different from the independent
        // one: somier fed by axpy computes different velocities than somier
        // on its own generated data.
        let ctx = VectorContext::with_mvl(16);
        let mut mem1 = MemoryHierarchy::default();
        let piped = pipeline().build(&mut mem1, &ctx);
        let mut mem2 = MemoryHierarchy::default();
        let plain = Composite::new(vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))])
            .build(&mut mem2, &ctx);
        assert_ne!(
            piped.output("p1.vout").values,
            plain.output("p1.vout").values
        );
    }

    #[test]
    fn broken_chain_fails_validation() {
        // Writing the *independent* somier expectations into memory must
        // not satisfy the pipelined checks: the chain changed them.
        let ctx = VectorContext::with_mvl(16);
        let mut mem = MemoryHierarchy::default();
        let piped = pipeline().build(&mut mem, &ctx);
        let mut mem2 = MemoryHierarchy::default();
        let plain = Composite::new(vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))])
            .build(&mut mem2, &ctx);
        let plain_by_addr: Vec<Check> = plain.checks;
        for c in &plain_by_addr {
            mem.write_f64(c.addr, c.expected);
        }
        assert!(validate(&mem, &piped.checks).is_err());
    }

    #[test]
    fn nested_pipelined_composites_chain_through_the_outer_links() {
        // Outer pipeline: axpy feeds a nested pipeline (somier → axpy)
        // through the inner composite's prefixed buffer name "p0.v". The
        // outer composite forwards the bound values inward and rebases the
        // whole inner kernel, so the nesting path lines up end to end.
        let n = 128;
        let inner: SharedWorkload = Arc::new(Composite::pipelined(
            vec![Arc::new(Somier::new(n)), Arc::new(Axpy::new(n))],
            vec![links(&[("xout", "x"), ("vout", "y")])],
        ));
        let outer = Composite::pipelined(
            vec![Arc::new(Axpy::new(n)), inner],
            vec![links(&[("y", "p0.v")])],
        );
        let mut mem = MemoryHierarchy::default();
        let setup = outer.build(&mut mem, &VectorContext::with_mvl(16));

        // The chained reference: the inner somier's velocity input is the
        // outer axpy's reference output.
        let axpy_y = setup.output("p0.y");
        let somier_vout = setup.output("p1.p0.vout");
        let somier_x = {
            let mut gen = crate::data::DataGen::for_workload("somier");
            gen.uniform_vec(n + 2, -1.0, 1.0)
        };
        for j in 0..n {
            let force = 4.0 * (-2.0f64).mul_add(somier_x[j + 1], somier_x[j] + somier_x[j + 2]);
            let expected = force.mul_add(0.001, axpy_y.values[j]);
            assert_eq!(somier_vout.values[j], expected, "element {j}");
        }
        // The inner somier's velocity loads were rebased (by the outer
        // composite) onto the outer axpy's y buffer.
        let (ys, ye) = axpy_y.range();
        assert!(setup
            .kernel
            .instrs
            .iter()
            .any(|i| i.opcode == ava_isa::Opcode::VLoad
                && i.mem.is_some_and(|m| m.base >= ys && m.base < ye)));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_composite_is_rejected() {
        let _ = Composite::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "no buffer named \"nope\"")]
    fn unknown_link_names_are_rejected() {
        let _ = Composite::pipelined(
            vec![Arc::new(Axpy::new(64)), Arc::new(Somier::new(64))],
            vec![links(&[("nope", "v")])],
        );
    }

    #[test]
    #[should_panic(expected = "cannot bind")]
    fn size_mismatched_links_are_rejected() {
        // Axpy's 64-element output cannot feed somier's 66-element halo
        // position array.
        let _ = Composite::pipelined(
            vec![Arc::new(Axpy::new(64)), Arc::new(Somier::new(64))],
            vec![links(&[("y", "x")])],
        );
    }

    #[test]
    #[should_panic(expected = "cannot be bound")]
    fn internal_buffers_are_rejected_at_construction() {
        // ParticleFilter's gather indices derive from its positions; a link
        // onto them must fail in the constructor, not mid-sweep.
        let _ = Composite::pipelined(
            vec![
                Arc::new(Axpy::new(64)),
                Arc::new(crate::ParticleFilter::new(64, 8)),
            ],
            vec![links(&[("y", "idx")])],
        );
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bound_inputs_are_rejected() {
        let _ = Composite::pipelined(
            vec![Arc::new(Somier::new(64)), Arc::new(Axpy::new(64))],
            vec![links(&[("xout", "x"), ("vout", "x")])],
        );
    }

    #[test]
    #[should_panic(expected = "pure input")]
    fn consuming_a_pure_input_is_rejected() {
        let _ = Composite::pipelined(
            vec![Arc::new(Axpy::new(64)), Arc::new(Somier::new(64))],
            vec![links(&[("x", "v")])],
        );
    }
}
