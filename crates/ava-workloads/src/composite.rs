//! Composite: a multi-kernel workload running several applications back to
//! back on one system.
//!
//! The paper evaluates each RiVEC kernel in isolation; real deployments run
//! *mixes* — an option pricer feeding a solver, a filter stage after a
//! stencil. [`Composite`] models that: its phases execute sequentially in a
//! single program on one cache-warm memory hierarchy, so later phases see
//! whatever L2 state the earlier ones left behind, and one `RunReport`
//! covers the whole mix. Each phase keeps its own input data and golden
//! reference checks, so the composite validates exactly when every phase
//! does.

use ava_isa::VectorContext;
use ava_memory::MemoryHierarchy;

use crate::{SharedWorkload, Workload, WorkloadSetup};

/// A multi-kernel workload: the given phases run sequentially in one
/// simulation, sharing the memory hierarchy.
///
/// ```
/// use std::sync::Arc;
/// use ava_workloads::{Axpy, Composite, Somier, Workload};
///
/// let mix = Composite::new(vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))]);
/// assert_eq!(mix.name(), "composite");
/// assert_eq!(
///     mix.elements(),
///     Axpy::new(256).elements() + Somier::new(256).elements()
/// );
/// ```
#[derive(Clone)]
pub struct Composite {
    phases: Vec<SharedWorkload>,
}

impl Composite {
    /// Creates a composite over the given phases, in execution order.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    #[must_use]
    pub fn new(phases: Vec<SharedWorkload>) -> Self {
        assert!(!phases.is_empty(), "a composite needs at least one phase");
        Self { phases }
    }

    /// The phases, in execution order.
    #[must_use]
    pub fn phases(&self) -> &[SharedWorkload] {
        &self.phases
    }

    /// Names of the phases, in execution order ("axpy+somier" style labels
    /// for tables come from joining these).
    #[must_use]
    pub fn phase_names(&self) -> Vec<&'static str> {
        self.phases.iter().map(|p| p.name()).collect()
    }
}

impl std::fmt::Debug for Composite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Composite")
            .field("phases", &self.phase_names())
            .finish()
    }
}

impl Workload for Composite {
    fn name(&self) -> &'static str {
        "composite"
    }

    fn domain(&self) -> &'static str {
        "multi-kernel mix"
    }

    fn elements(&self) -> usize {
        // The sweep scheduler's cost estimate: a mix costs the sum of its
        // phases, so composite points rank ahead of their largest phase.
        self.phases.iter().map(|p| p.elements()).sum()
    }

    fn build(&self, mem: &mut MemoryHierarchy, ctx: &VectorContext) -> WorkloadSetup {
        let mut setup = WorkloadSetup {
            kernel: ava_compiler::IrKernel {
                name: "composite".to_string(),
                ..Default::default()
            },
            checks: Vec::new(),
            strips: 0,
        };
        for phase in &self.phases {
            // Each phase allocates its own arrays in the shared functional
            // memory, so its golden-reference checks are independent of the
            // phases around it; only cache/DRAM *timing* state is shared.
            let part = phase.build(mem, ctx);
            setup.kernel.concat(&part.kernel);
            setup.checks.extend(part.checks);
            setup.strips += part.strips;
        }
        setup
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::{validate, Axpy, Blackscholes, Somier};

    fn mix() -> Composite {
        Composite::new(vec![
            Arc::new(Axpy::new(256)),
            Arc::new(Somier::new(256)),
            Arc::new(Blackscholes::new(64)),
        ])
    }

    #[test]
    fn build_concatenates_every_phase() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let composite = mix().build(&mut mem, &ctx);

        let mut mem2 = MemoryHierarchy::default();
        let parts: Vec<WorkloadSetup> = mix()
            .phases()
            .iter()
            .map(|p| p.build(&mut mem2, &ctx))
            .collect();
        assert_eq!(
            composite.kernel.len(),
            parts.iter().map(|p| p.kernel.len()).sum::<usize>()
        );
        assert_eq!(
            composite.checks.len(),
            parts.iter().map(|p| p.checks.len()).sum::<usize>()
        );
        assert_eq!(
            composite.strips,
            parts.iter().map(|p| p.strips).sum::<u64>()
        );
    }

    #[test]
    fn pressure_is_the_maximum_phase_not_the_sum() {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(16);
        let composite = mix().build(&mut mem, &ctx);
        let mut mem2 = MemoryHierarchy::default();
        let max_phase = mix()
            .phases()
            .iter()
            .map(|p| p.build(&mut mem2, &ctx).kernel.max_pressure())
            .max()
            .unwrap();
        assert_eq!(composite.kernel.max_pressure(), max_phase);
    }

    #[test]
    fn checks_validate_after_writing_expected_values() {
        // The checks of every phase coexist: writing each expected value
        // into the shared memory satisfies the whole composite.
        let mut mem = MemoryHierarchy::default();
        let setup = mix().build(&mut mem, &VectorContext::with_mvl(16));
        for c in &setup.checks {
            mem.write_f64(c.addr, c.expected);
        }
        assert!(validate(&mem, &setup.checks).is_ok());
    }

    #[test]
    fn elements_sum_phase_costs() {
        assert_eq!(
            mix().elements(),
            Axpy::new(256).elements()
                + Somier::new(256).elements()
                + Blackscholes::new(64).elements()
        );
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_composite_is_rejected() {
        let _ = Composite::new(vec![]);
    }
}
