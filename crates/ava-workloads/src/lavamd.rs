//! LavaMD2: particle interactions within a cut-off radius (molecular
//! dynamics, N-body).
//!
//! The defining property for this study is the *fixed application vector
//! length of 48 elements* — one vector operation per neighbour box — which
//! makes MVL=48 (AVA X3 / NATIVE X3) the sweet spot: larger configurations
//! leave part of every register unused, and their full-MVL spill code moves
//! 128 elements even though only 48 carry data (§V, Figure 3-c).

use ava_compiler::KernelBuilder;
use ava_isa::VectorContext;
use ava_memory::MemoryHierarchy;

use crate::data::DataGen;
use crate::layout::{materialize_input, BufferBindings, DataLayout, PlannedLayout};
use crate::{Check, OutputValues, Workload, WorkloadSetup};

/// Particles per box in the LavaMD decomposition (the paper's fixed VL).
pub const PARTICLES_PER_BOX: usize = 48;

/// The LavaMD2 workload.
#[derive(Debug, Clone, Copy)]
pub struct LavaMd2 {
    /// Number of home-box particles processed.
    particles: usize,
    /// Neighbour boxes interacting with each particle.
    neighbors: usize,
    /// Interaction scale (alpha squared in the original kernel).
    alpha2: f64,
}

impl LavaMd2 {
    /// Creates a LavaMD2 run over `particles` home particles, each
    /// interacting with `neighbors` boxes of 48 particles.
    #[must_use]
    pub fn new(particles: usize, neighbors: usize) -> Self {
        assert!(
            particles > 0 && neighbors > 0,
            "problem size must be positive"
        );
        Self {
            particles,
            neighbors,
            alpha2: 0.5,
        }
    }
}

impl Default for LavaMd2 {
    fn default() -> Self {
        Self::new(32, 2)
    }
}

/// One neighbour box worth of particle data.
struct Box3 {
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    q: Vec<f64>,
}

impl Workload for LavaMd2 {
    fn name(&self) -> &'static str {
        "lavamd2"
    }

    fn domain(&self) -> &'static str {
        "Molecular Dynamics (N-Body)"
    }

    fn elements(&self) -> usize {
        // Each home particle interacts with every 48-particle neighbour box
        // (~a dozen operations per pair).
        self.particles * self.neighbors * PARTICLES_PER_BOX * 12
    }

    fn data_layout(&self) -> DataLayout {
        let mut l = DataLayout::new();
        for b in 0..self.neighbors {
            for field in ["x", "y", "z", "q"] {
                l.input(format!("box{b}.{field}"), PARTICLES_PER_BOX);
            }
        }
        l.output("fx", self.particles);
        l.output("fy", self.particles);
        l.output("fz", self.particles);
        l.output("e", self.particles);
        l
    }

    fn build_with_bindings(
        &self,
        mem: &mut MemoryHierarchy,
        ctx: &VectorContext,
        plan: &PlannedLayout,
        bindings: &BufferBindings,
    ) -> WorkloadSetup {
        let mut gen = DataGen::for_workload(self.name());
        let vl = PARTICLES_PER_BOX;

        // Neighbour boxes (shared by every home particle, as in the original
        // kernel where each home box has a fixed neighbour list).
        let boxes: Vec<Box3> = (0..self.neighbors)
            .map(|b| {
                let mut field = |f: &str, lo: f64, hi: f64| {
                    materialize_input(mem, plan, bindings, &format!("box{b}.{f}"), || {
                        gen.uniform_vec(vl, lo, hi)
                    })
                };
                Box3 {
                    x: field("x", 0.0, 4.0),
                    y: field("y", 0.0, 4.0),
                    z: field("z", 0.0, 4.0),
                    q: field("q", 0.1, 1.0),
                }
            })
            .collect();
        let box_addrs: Vec<[u64; 4]> = (0..self.neighbors)
            .map(|b| {
                [
                    plan.addr(&format!("box{b}.x")),
                    plan.addr(&format!("box{b}.y")),
                    plan.addr(&format!("box{b}.z")),
                    plan.addr(&format!("box{b}.q")),
                ]
            })
            .collect();

        // Home particles (kept in scalar registers by the kernel, so they
        // are not declared buffers).
        let px = gen.uniform_vec(self.particles, 0.0, 4.0);
        let py = gen.uniform_vec(self.particles, 0.0, 4.0);
        let pz = gen.uniform_vec(self.particles, 0.0, 4.0);
        let out_fx = plan.addr("fx");
        let out_fy = plan.addr("fy");
        let out_fz = plan.addr("fz");
        let out_e = plan.addr("e");

        // The application vector length is fixed at 48 elements per neighbour
        // box; machines with a shorter effective MVL stripmine it, machines
        // with a longer MVL leave part of every register unused (which is
        // exactly why MVL=48 is this kernel's sweet spot, §V).
        let hw_mvl = ctx.effective_mvl();
        let mut b = KernelBuilder::new("lavamd2");
        let mut strips = 0u64;

        for (i, (&xi, (&yi, &zi))) in px.iter().zip(py.iter().zip(pz.iter())).enumerate() {
            // Per-particle accumulators; only lane 0 carries the running sum
            // (per-strip reductions are added into it).
            b.set_vl(hw_mvl.min(vl));
            let mut acc_fx = b.vsplat(0.0);
            let mut acc_fy = b.vsplat(0.0);
            let mut acc_fz = b.vsplat(0.0);
            let mut acc_e = b.vsplat(0.0);
            for addrs in &box_addrs {
                let mut off = 0usize;
                while off < vl {
                    let strip_vl = hw_mvl.min(vl - off);
                    b.set_vl(strip_vl);
                    let byte_off = (8 * off) as u64;
                    let rx = b.vload(addrs[0] + byte_off);
                    let ry = b.vload(addrs[1] + byte_off);
                    let rz = b.vload(addrs[2] + byte_off);
                    let q = b.vload(addrs[3] + byte_off);
                    let dx = b.vfsub(rx, xi);
                    let dy = b.vfsub(ry, yi);
                    let dz = b.vfsub(rz, zi);
                    let mut r2 = b.vfmul(dx, dx);
                    r2 = b.vfmadd(dy, dy, r2);
                    r2 = b.vfmadd(dz, dz, r2);
                    let u2 = b.vfmul(r2, -self.alpha2);
                    let vij = b.vfexp(u2);
                    let fs = b.vfmul(vij, 2.0);
                    let qfs = b.vfmul(q, fs);
                    let tx = b.vfmul(qfs, dx);
                    let ty = b.vfmul(qfs, dy);
                    let tz = b.vfmul(qfs, dz);
                    let te = b.vfmul(q, vij);
                    let sx = b.vfredsum(tx);
                    let sy = b.vfredsum(ty);
                    let sz = b.vfredsum(tz);
                    let se = b.vfredsum(te);
                    acc_fx = b.vfadd(acc_fx, sx);
                    acc_fy = b.vfadd(acc_fy, sy);
                    acc_fz = b.vfadd(acc_fz, sz);
                    acc_e = b.vfadd(acc_e, se);
                    strips += 1;
                    off += strip_vl;
                }
            }
            b.set_vl(1);
            b.vstore(acc_fx, out_fx + (8 * i) as u64);
            b.vstore(acc_fy, out_fy + (8 * i) as u64);
            b.vstore(acc_fz, out_fz + (8 * i) as u64);
            b.vstore(acc_e, out_e + (8 * i) as u64);
        }

        // Scalar golden reference, mirroring the stripmined accumulation
        // order of the vector kernel.
        let mut checks = Vec::with_capacity(4 * self.particles);
        let mut out_values: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for i in 0..self.particles {
            let (mut fx, mut fy, mut fz, mut en) = (0.0f64, 0.0, 0.0, 0.0);
            for bx in &boxes {
                let mut off = 0usize;
                while off < vl {
                    let strip_vl = hw_mvl.min(vl - off);
                    let (mut sx, mut sy, mut sz, mut se) = (0.0f64, 0.0, 0.0, 0.0);
                    for j in off..off + strip_vl {
                        let dx = bx.x[j] - px[i];
                        let dy = bx.y[j] - py[i];
                        let dz = bx.z[j] - pz[i];
                        let r2 = dy.mul_add(dy, dx * dx);
                        let r2 = dz.mul_add(dz, r2);
                        let vij = (r2 * -self.alpha2).exp();
                        let qfs = bx.q[j] * (vij * 2.0);
                        sx += qfs * dx;
                        sy += qfs * dy;
                        sz += qfs * dz;
                        se += bx.q[j] * vij;
                    }
                    fx += sx;
                    fy += sy;
                    fz += sz;
                    en += se;
                    off += strip_vl;
                }
            }
            for (slot, (addr, val)) in [(out_fx, fx), (out_fy, fy), (out_fz, fz), (out_e, en)]
                .into_iter()
                .enumerate()
            {
                checks.push(Check {
                    addr: addr + (8 * i) as u64,
                    expected: val,
                    tolerance: 1e-9,
                });
                out_values[slot].push(val);
            }
        }
        let [fxs, fys, fzs, ens] = out_values;

        WorkloadSetup {
            kernel: b.finish(),
            checks,
            strips,
            outputs: vec![
                OutputValues {
                    name: "fx".to_string(),
                    base: out_fx,
                    values: fxs,
                },
                OutputValues {
                    name: "fy".to_string(),
                    base: out_fy,
                    values: fys,
                },
                OutputValues {
                    name: "fz".to_string(),
                    base: out_fz,
                    values: fzs,
                },
                OutputValues {
                    name: "e".to_string(),
                    base: out_e,
                    values: ens,
                },
            ],
            warm_ranges: plan.warm_ranges(bindings),
            phase_marks: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_fits_lmul2_but_not_lmul4() {
        let mut mem = MemoryHierarchy::default();
        let setup = LavaMd2::new(4, 2).build(&mut mem, &VectorContext::with_mvl(48));
        let p = setup.kernel.max_pressure();
        assert!(
            p > 8 && p <= 16,
            "lavamd pressure should exceed the LMUL4 budget but fit LMUL2, got {p}"
        );
    }

    #[test]
    fn vector_length_is_fixed_at_48_on_long_machines() {
        let mut mem = MemoryHierarchy::default();
        let setup = LavaMd2::new(2, 1).build(&mut mem, &VectorContext::with_mvl(128));
        let setvls: Vec<usize> = setup
            .kernel
            .instrs
            .iter()
            .filter_map(|i| i.setvl_request)
            .collect();
        assert!(setvls.contains(&48), "application VL is 48: {setvls:?}");
        assert!(!setvls.iter().any(|&v| v > 48));
        assert_eq!(setup.strips, 2, "one strip per neighbour box at MVL >= 48");
    }

    #[test]
    fn short_machines_stripmine_the_48_element_loop() {
        let mut mem = MemoryHierarchy::default();
        let setup = LavaMd2::new(2, 1).build(&mut mem, &VectorContext::with_mvl(16));
        let max_vl = setup
            .kernel
            .instrs
            .iter()
            .filter_map(|i| i.setvl_request)
            .max()
            .unwrap();
        assert_eq!(max_vl, 16);
        assert_eq!(
            setup.strips,
            2 * 3,
            "three 16-element strips per 48-element box"
        );
    }

    #[test]
    fn checks_cover_every_force_component() {
        let mut mem = MemoryHierarchy::default();
        let setup = LavaMd2::new(5, 2).build(&mut mem, &VectorContext::with_mvl(48));
        assert_eq!(setup.checks.len(), 20);
        assert_eq!(setup.strips, 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_neighbors_is_rejected() {
        let _ = LavaMd2::new(4, 0);
    }
}
