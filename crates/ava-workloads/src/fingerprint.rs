//! Stable content fingerprinting for the result store.
//!
//! The sweep engine's on-disk result store keys every cached simulation by
//! a *fingerprint* of the work it would redo: the planned data layout, the
//! golden-reference checks and the compiled program bytes. Two runs that
//! hash identically are guaranteed to simulate identically (everything the
//! simulator reads is covered), so a store hit can substitute the cached
//! [`RunReport`] for a fresh run — and any change to a workload's code, its
//! data generator or its reference flips the fingerprint, turning the stale
//! entry into a plain miss.
//!
//! `std::hash::DefaultHasher` is explicitly *not* guaranteed to produce the
//! same values across Rust releases, which would silently invalidate every
//! stored result on a toolchain upgrade without saying so. This hand-rolled
//! FNV-1a 64 is stable by construction: the store's entries survive
//! recompilation and only the recorded code-version tag decides deliberate
//! invalidation.
//!
//! [`RunReport`]: ../ava_sim/run/struct.RunReport.html

/// An incremental, stable 64-bit FNV-1a hasher.
///
/// ```
/// use ava_workloads::Fingerprint;
///
/// let mut a = Fingerprint::new();
/// a.write_str("axpy");
/// a.write_u64(4096);
/// let mut b = Fingerprint::new();
/// b.write_str("axpy");
/// b.write_u64(4096);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one little-endian `u64`.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Feeds a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Feeds one `f64` by its exact bit pattern (no rounding; NaN payloads
    /// and signed zeros are distinguished, which is what a golden-reference
    /// change detector wants).
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_fnv1a_test_vectors_hold() {
        // Classic published FNV-1a 64 vectors: the empty input is the
        // offset basis, and "a" is a fixed constant. Pinning them here is
        // what makes the hash *stable*: any accidental change to the
        // algorithm breaks this test instead of silently invalidating
        // every result store in existence.
        assert_eq!(Fingerprint::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fingerprint::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fingerprint::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefixing_separates_string_boundaries() {
        let mut a = Fingerprint::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_bit_patterns_are_distinguished() {
        let mut pos = Fingerprint::new();
        pos.write_f64(0.0);
        let mut neg = Fingerprint::new();
        neg.write_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish());
    }
}
