//! Blackscholes: European option pricing (financial analysis).
//!
//! A high-DLP kernel with heavy register pressure: the vectorised pricing
//! formula keeps the Abramowitz–Stegun polynomial coefficients and several
//! intermediate values live at once (the paper reports 23 logical registers,
//! which is why register grouping needs spill code from LMUL=2 upwards while
//! AVA X2 still fits in its 32 physical registers).

use ava_compiler::{KernelBuilder, VirtReg};
use ava_isa::VectorContext;
use ava_memory::MemoryHierarchy;

use crate::data::DataGen;
use crate::layout::{materialize_input, BufferBindings, DataLayout, PlannedLayout};
use crate::{Check, OutputValues, Workload, WorkloadSetup};

const A1: f64 = 0.31938153;
const A2: f64 = -0.356563782;
const A3: f64 = 1.781477937;
const A4: f64 = -1.821255978;
const A5: f64 = 1.330274429;
const K_COEF: f64 = 0.2316419;
const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
const RATE: f64 = 0.02;

/// The Blackscholes workload.
#[derive(Debug, Clone, Copy)]
pub struct Blackscholes {
    options: usize,
}

impl Blackscholes {
    /// Creates a pricing run over `options` European options.
    #[must_use]
    pub fn new(options: usize) -> Self {
        assert!(options > 0, "problem size must be positive");
        Self { options }
    }

    /// Number of options priced.
    #[must_use]
    pub fn options(&self) -> usize {
        self.options
    }
}

impl Default for Blackscholes {
    fn default() -> Self {
        Self::new(1024)
    }
}

/// Scalar golden model of the cumulative normal distribution approximation
/// used by the vector kernel.
fn cnd(d: f64) -> f64 {
    let k = 1.0 / (0.2316419f64.mul_add(d.abs(), 1.0));
    let poly = A5
        .mul_add(k, A4)
        .mul_add(k, A3)
        .mul_add(k, A2)
        .mul_add(k, A1)
        * k;
    let n = (-0.5 * d * d).exp() * INV_SQRT_2PI;
    let positive = 1.0 - n * poly;
    if d < 0.0 {
        n * poly
    } else {
        positive
    }
}

/// Scalar golden model of one option price (call, put).
fn reference(s: f64, k: f64, t: f64, sigma: f64) -> (f64, f64) {
    let sqrt_t = t.sqrt();
    let sig_sqrt_t = sigma * sqrt_t;
    let d1 = ((s / k).ln() + (0.5 * sigma * sigma + RATE) * t) / sig_sqrt_t;
    let d2 = d1 - sig_sqrt_t;
    let exp_rt = (t * -RATE).exp();
    let call = s * cnd(d1) - k * exp_rt * cnd(d2);
    let put = call - s + k * exp_rt;
    (call, put)
}

impl Workload for Blackscholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn domain(&self) -> &'static str {
        "Financial Analysis (Dense Linear Algebra)"
    }

    fn elements(&self) -> usize {
        // The pricing formula evaluates two polynomial CNDs plus the
        // call/put assembly per option — by far the heaviest kernel of the
        // suite per element.
        self.options * 64
    }

    fn data_layout(&self) -> DataLayout {
        let mut l = DataLayout::new();
        l.input("spot", self.options);
        l.input("strike", self.options);
        l.input("time", self.options);
        l.input("sigma", self.options);
        l.output("call", self.options);
        l.output("put", self.options);
        l
    }

    fn build_with_bindings(
        &self,
        mem: &mut MemoryHierarchy,
        ctx: &VectorContext,
        plan: &PlannedLayout,
        bindings: &BufferBindings,
    ) -> WorkloadSetup {
        let n = self.options;
        let mut gen = DataGen::for_workload(self.name());
        let spot = materialize_input(mem, plan, bindings, "spot", || {
            gen.positive_vec(n, 10.0, 150.0)
        });
        let strike = materialize_input(mem, plan, bindings, "strike", || {
            gen.positive_vec(n, 10.0, 150.0)
        });
        let time = materialize_input(mem, plan, bindings, "time", || {
            gen.positive_vec(n, 0.1, 4.0)
        });
        let sigma = materialize_input(mem, plan, bindings, "sigma", || {
            gen.positive_vec(n, 0.05, 0.7)
        });

        let a_spot = plan.addr("spot");
        let a_strike = plan.addr("strike");
        let a_time = plan.addr("time");
        let a_sigma = plan.addr("sigma");
        let a_call = plan.addr("call");
        let a_put = plan.addr("put");

        let mvl = ctx.effective_mvl();
        let mut b = KernelBuilder::new("blackscholes");

        // vsetvlmax preamble: the coefficient splats below must fill whole
        // registers regardless of the VL a previously-run kernel left
        // behind (multi-kernel composites run phases back to back).
        b.set_vl(mvl);
        // Loop-invariant constants are splatted once and stay live for the
        // whole kernel, as the RiVEC sources do — this is where most of the
        // register pressure comes from.
        let c_a1 = b.vsplat(A1);
        let c_a2 = b.vsplat(A2);
        let c_a3 = b.vsplat(A3);
        let c_a4 = b.vsplat(A4);
        let c_a5 = b.vsplat(A5);
        let c_kc = b.vsplat(K_COEF);
        let c_inv = b.vsplat(INV_SQRT_2PI);
        let c_one = b.vsplat(1.0);
        let c_half = b.vsplat(0.5);
        let c_rate = b.vsplat(RATE);
        let c_negr = b.vsplat(-RATE);

        let cnd_vec = |b: &mut KernelBuilder, d: VirtReg| -> VirtReg {
            let absd = b.vfabs(d);
            let kden = b.vfmadd(absd, c_kc, c_one);
            let k = b.vfdiv(c_one, kden);
            let mut p = b.vfmadd(c_a5, k, c_a4);
            p = b.vfmadd(p, k, c_a3);
            p = b.vfmadd(p, k, c_a2);
            p = b.vfmadd(p, k, c_a1);
            p = b.vfmul(p, k);
            let dsq = b.vfmul(d, d);
            let earg = b.vfmul(dsq, -0.5);
            let e = b.vfexp(earg);
            let npdf = b.vfmul(e, c_inv);
            let m = b.vfmul(npdf, p);
            let pos = b.vfsub(c_one, m);
            let mask = b.vmflt(d, 0.0);
            b.vmerge(m, pos, mask)
        };

        let mut strips = 0u64;
        let mut i = 0usize;
        while i < n {
            let vl = mvl.min(n - i);
            b.set_vl(vl);
            let off = (8 * i) as u64;
            let vs = b.vload(a_spot + off);
            let vk = b.vload(a_strike + off);
            let vt = b.vload(a_time + off);
            let vv = b.vload(a_sigma + off);

            let sqrt_t = b.vfsqrt(vt);
            let sig_sqrt_t = b.vfmul(vv, sqrt_t);
            let ratio = b.vfdiv(vs, vk);
            let ln_sk = b.vfln(ratio);
            let sig2 = b.vfmul(vv, vv);
            let sig2h = b.vfmul(sig2, c_half);
            let rp = b.vfadd(sig2h, c_rate);
            let num = b.vfmadd(rp, vt, ln_sk);
            let d1 = b.vfdiv(num, sig_sqrt_t);
            let d2 = b.vfsub(d1, sig_sqrt_t);

            let cnd1 = cnd_vec(&mut b, d1);
            let cnd2 = cnd_vec(&mut b, d2);

            let neg_rt = b.vfmul(vt, c_negr);
            let exp_rt = b.vfexp(neg_rt);
            let k_exp_rt = b.vfmul(vk, exp_rt);
            let c1 = b.vfmul(vs, cnd1);
            let c2 = b.vfmul(k_exp_rt, cnd2);
            let call = b.vfsub(c1, c2);
            let p1 = b.vfsub(call, vs);
            let put = b.vfadd(p1, k_exp_rt);

            b.vstore(call, a_call + off);
            b.vstore(put, a_put + off);
            strips += 1;
            i += vl;
        }

        let mut checks = Vec::with_capacity(2 * n);
        let mut calls = Vec::with_capacity(n);
        let mut puts = Vec::with_capacity(n);
        for j in 0..n {
            let (call, put) = reference(spot[j], strike[j], time[j], sigma[j]);
            checks.push(Check {
                addr: a_call + (8 * j) as u64,
                expected: call,
                tolerance: 1e-9,
            });
            checks.push(Check {
                addr: a_put + (8 * j) as u64,
                expected: put,
                tolerance: 1e-9,
            });
            calls.push(call);
            puts.push(put);
        }

        WorkloadSetup {
            kernel: b.finish(),
            checks,
            strips,
            outputs: vec![
                OutputValues {
                    name: "call".to_string(),
                    base: a_call,
                    values: calls,
                },
                OutputValues {
                    name: "put".to_string(),
                    base: a_put,
                    values: puts,
                },
            ],
            warm_ranges: plan.warm_ranges(bindings),
            phase_marks: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_pressure_forces_grouped_spills_but_fits_ava_x2() {
        let mut mem = MemoryHierarchy::default();
        let setup = Blackscholes::new(128).build(&mut mem, &VectorContext::with_mvl(16));
        let p = setup.kernel.max_pressure();
        assert!(
            p > 16 && p <= 32,
            "blackscholes pressure should exceed the LMUL2 budget but fit 32 registers, got {p}"
        );
    }

    #[test]
    fn cnd_matches_known_values() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-4);
        assert!((cnd(1.96) - 0.975).abs() < 1e-3);
        assert!((cnd(-1.96) - 0.025).abs() < 1e-3);
        assert!(cnd(5.0) > 0.999);
    }

    #[test]
    fn reference_prices_satisfy_no_arbitrage_bounds() {
        let (call, put) = reference(100.0, 100.0, 1.0, 0.2);
        assert!(call > 0.0 && call < 100.0);
        assert!(put > 0.0 && put < 100.0);
        // Put-call parity.
        let parity = call - put - 100.0 + 100.0 * (-RATE * 1.0f64).exp();
        assert!(parity.abs() < 1e-9);
    }

    #[test]
    fn arithmetic_dominates_the_instruction_mix() {
        let mut mem = MemoryHierarchy::default();
        let setup = Blackscholes::new(128).build(&mut mem, &VectorContext::with_mvl(16));
        let stats_mem = setup
            .kernel
            .instrs
            .iter()
            .filter(|i| i.kind() == ava_isa::InstrKind::Memory)
            .count();
        let arith = setup
            .kernel
            .instrs
            .iter()
            .filter(|i| i.kind() == ava_isa::InstrKind::Arithmetic)
            .count();
        assert!(arith > 4 * stats_mem, "arith {arith} vs mem {stats_mem}");
    }

    #[test]
    fn checks_cover_calls_and_puts() {
        let mut mem = MemoryHierarchy::default();
        let setup = Blackscholes::new(64).build(&mut mem, &VectorContext::with_mvl(16));
        assert_eq!(setup.checks.len(), 128);
    }
}
