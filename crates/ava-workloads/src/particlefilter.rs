//! Particle Filter: sequential Monte-Carlo tracking (medical imaging).
//!
//! A structured-grid kernel with moderate register pressure: particle
//! positions are advanced, a likelihood value is gathered from a measurement
//! grid for every particle (indexed vector loads), and the weights are
//! updated and accumulated. Spill/swap traffic only appears for the most
//! aggressive configurations (LMUL4/LMUL8, AVA X4/X8), and even then it is a
//! negligible fraction of the instruction stream (§V, Figure 3-d).

use ava_compiler::KernelBuilder;
use ava_isa::VectorContext;
use ava_memory::MemoryHierarchy;

use crate::data::DataGen;
use crate::layout::{materialize_input, BufferBindings, DataLayout, PlannedLayout};
use crate::{Check, OutputValues, Workload, WorkloadSetup};

/// The Particle Filter workload.
#[derive(Debug, Clone, Copy)]
pub struct ParticleFilter {
    particles: usize,
    grid: usize,
}

impl ParticleFilter {
    /// Creates a filter over `particles` particles on a `grid`×`grid`
    /// likelihood map.
    #[must_use]
    pub fn new(particles: usize, grid: usize) -> Self {
        assert!(particles > 0 && grid >= 4, "problem size must be positive");
        Self { particles, grid }
    }
}

impl Default for ParticleFilter {
    fn default() -> Self {
        Self::new(1024, 64)
    }
}

impl Workload for ParticleFilter {
    fn name(&self) -> &'static str {
        "particlefilter"
    }

    fn domain(&self) -> &'static str {
        "Medical Imaging (Structured Grids)"
    }

    fn elements(&self) -> usize {
        // Indexed likelihood gather, weight update and position drift per
        // particle.
        self.particles * 16
    }

    fn data_layout(&self) -> DataLayout {
        let n = self.particles;
        let mut l = DataLayout::new();
        l.input("x", n);
        l.input("y", n);
        l.input("w", n);
        l.input("lik", self.grid * self.grid);
        // The gather indices derive from the positions, so they can never
        // be bound to an upstream phase's output.
        l.internal("idx", n);
        l.output("xout", n);
        l.output("yout", n);
        l.output("wout", n);
        l.output("sum", 1);
        l
    }

    fn build_with_bindings(
        &self,
        mem: &mut MemoryHierarchy,
        ctx: &VectorContext,
        plan: &PlannedLayout,
        bindings: &BufferBindings,
    ) -> WorkloadSetup {
        let n = self.particles;
        let cells = self.grid * self.grid;
        let mut gen = DataGen::for_workload(self.name());

        let xs = materialize_input(mem, plan, bindings, "x", || {
            gen.uniform_vec(n, 0.0, (self.grid - 2) as f64)
        });
        let ys = materialize_input(mem, plan, bindings, "y", || {
            gen.uniform_vec(n, 0.0, (self.grid - 2) as f64)
        });
        let ws = materialize_input(mem, plan, bindings, "w", || gen.positive_vec(n, 0.5, 1.5));
        let likelihood = materialize_input(mem, plan, bindings, "lik", || {
            gen.positive_vec(cells, 0.01, 1.0)
        });
        // Grid cell index of every particle, precomputed by the scalar side
        // of the application (float-to-int conversions happen there). The
        // index buffer derives from the positions, so it is always generated
        // here rather than being a bindable input.
        // "idx" is declared Internal, so the composite constructor rejects
        // links onto it; it always derives from the (possibly bound)
        // positions here.
        let idx: Vec<i64> = xs
            .iter()
            .zip(ys.iter())
            .map(|(&x, &y)| (y as i64) * self.grid as i64 + (x as i64))
            .collect();
        let idx_f: Vec<f64> = idx.iter().map(|&i| f64::from_bits(i as u64)).collect();
        mem.memory_mut().write_f64_slice(plan.addr("idx"), &idx_f);

        let a_x = plan.addr("x");
        let a_y = plan.addr("y");
        let a_w = plan.addr("w");
        let a_lik = plan.addr("lik");
        let a_idx = plan.addr("idx");
        let a_xout = plan.addr("xout");
        let a_yout = plan.addr("yout");
        let a_wout = plan.addr("wout");
        let a_sum = plan.addr("sum");

        let mvl = ctx.effective_mvl();
        let mut b = KernelBuilder::new("particlefilter");

        // vsetvlmax preamble: splats must cover the full register whatever
        // VL a previously-run kernel left behind.
        b.set_vl(mvl);
        // Motion-model constants held in registers for the whole kernel.
        let c_dx = b.vsplat(1.0);
        let c_dy = b.vsplat(-2.0);
        let c_damp = b.vsplat(0.9);
        // Running weight sum; only lane 0 is meaningful (per-strip
        // reductions are accumulated into it).
        let mut acc_w = b.vsplat(0.0);

        let mut strips = 0u64;
        let mut i = 0usize;
        while i < n {
            let vl = mvl.min(n - i);
            b.set_vl(vl);
            let off = (8 * i) as u64;
            let vx = b.vload(a_x + off);
            let vy = b.vload(a_y + off);
            let vw = b.vload(a_w + off);
            let vidx = b.vload(a_idx + off);
            // Advance the motion model.
            let nx = b.vfadd(vx, c_dx);
            let ny = b.vfadd(vy, c_dy);
            // Gather the likelihood of each particle's grid cell.
            let lik = b.vload_indexed(a_lik, vidx);
            // Weight update with damping.
            let w1 = b.vfmul(vw, lik);
            let nw = b.vfmul(w1, c_damp);
            let strip_sum = b.vfredsum(nw);
            acc_w = b.vfadd(acc_w, strip_sum);
            b.vstore(nx, a_xout + off);
            b.vstore(ny, a_yout + off);
            b.vstore(nw, a_wout + off);
            strips += 1;
            i += vl;
        }
        b.set_vl(1);
        b.vstore(acc_w, a_sum);

        // Golden reference: identical per-strip summation order.
        let mut checks = Vec::new();
        let mut xouts = Vec::with_capacity(n);
        let mut youts = Vec::with_capacity(n);
        let mut wouts = Vec::with_capacity(n);
        let mut wsum = 0.0f64;
        let mut j = 0usize;
        while j < n {
            let vl = mvl.min(n - j);
            let mut strip_sum = 0.0f64;
            for k in 0..vl {
                let p = j + k;
                let nw = ws[p] * likelihood[idx[p] as usize] * 0.9;
                strip_sum += nw;
                checks.push(Check {
                    addr: a_xout + (8 * p) as u64,
                    expected: xs[p] + 1.0,
                    tolerance: 1e-12,
                });
                checks.push(Check {
                    addr: a_yout + (8 * p) as u64,
                    expected: ys[p] - 2.0,
                    tolerance: 1e-12,
                });
                checks.push(Check {
                    addr: a_wout + (8 * p) as u64,
                    expected: nw,
                    tolerance: 1e-12,
                });
                xouts.push(xs[p] + 1.0);
                youts.push(ys[p] - 2.0);
                wouts.push(nw);
            }
            wsum += strip_sum;
            j += vl;
        }
        checks.push(Check {
            addr: a_sum,
            expected: wsum,
            tolerance: 1e-9,
        });

        WorkloadSetup {
            kernel: b.finish(),
            checks,
            strips,
            outputs: vec![
                OutputValues {
                    name: "xout".to_string(),
                    base: a_xout,
                    values: xouts,
                },
                OutputValues {
                    name: "yout".to_string(),
                    base: a_yout,
                    values: youts,
                },
                OutputValues {
                    name: "wout".to_string(),
                    base: a_wout,
                    values: wouts,
                },
                OutputValues {
                    name: "sum".to_string(),
                    base: a_sum,
                    values: vec![wsum],
                },
            ],
            warm_ranges: plan.warm_ranges(bindings),
            phase_marks: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_sits_between_the_lmul4_and_lmul2_budgets() {
        let mut mem = MemoryHierarchy::default();
        let setup = ParticleFilter::new(256, 16).build(&mut mem, &VectorContext::with_mvl(16));
        let p = setup.kernel.max_pressure();
        assert!(
            p > 8 && p <= 16,
            "particle filter pressure should be in (8, 16], got {p}"
        );
    }

    #[test]
    fn uses_indexed_gathers() {
        let mut mem = MemoryHierarchy::default();
        let setup = ParticleFilter::new(64, 16).build(&mut mem, &VectorContext::with_mvl(16));
        assert!(setup
            .kernel
            .instrs
            .iter()
            .any(|i| i.opcode == ava_isa::Opcode::VLoadIndexed));
    }

    #[test]
    fn check_count_covers_positions_weights_and_sum() {
        let mut mem = MemoryHierarchy::default();
        let setup = ParticleFilter::new(64, 16).build(&mut mem, &VectorContext::with_mvl(16));
        assert_eq!(setup.checks.len(), 3 * 64 + 1);
        assert_eq!(setup.strips, 4);
    }

    #[test]
    fn indices_stay_inside_the_grid() {
        let pf = ParticleFilter::new(512, 32);
        let mut mem = MemoryHierarchy::default();
        // Building also validates that gather addresses refer to the grid.
        let _ = pf.build(&mut mem, &VectorContext::with_mvl(64));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tiny_grids_are_rejected() {
        let _ = ParticleFilter::new(64, 2);
    }
}
