//! Swaptions: Monte-Carlo swaption pricing under a multi-factor HJM-style
//! model (financial analysis, map-reduce).
//!
//! Together with Blackscholes this is the highest-register-pressure kernel
//! of the suite (the paper reports 24 logical registers): the per-factor
//! volatility and drift terms, the running payoff accumulators and the path
//! variables are all live at once, so register grouping pays spill code from
//! LMUL=2 upwards while AVA only starts swapping at its smallest physical
//! register files (§V, Figure 3-f).

use ava_compiler::KernelBuilder;
use ava_isa::VectorContext;
use ava_memory::MemoryHierarchy;

use crate::data::DataGen;
use crate::layout::{materialize_input, BufferBindings, DataLayout, PlannedLayout};
use crate::{Check, OutputValues, Workload, WorkloadSetup};

const FACTORS: usize = 4;
const VOLS: [f64; FACTORS] = [0.11, 0.07, 0.05, 0.03];
const DRIFTS: [f64; FACTORS] = [-0.012, -0.007, -0.004, -0.002];
const STRIKE: f64 = 1.02;
const DISCOUNT: f64 = 0.97;

/// The Swaptions workload.
#[derive(Debug, Clone, Copy)]
pub struct Swaptions {
    paths: usize,
}

impl Swaptions {
    /// Creates a pricing run over `paths` Monte-Carlo paths.
    #[must_use]
    pub fn new(paths: usize) -> Self {
        assert!(paths > 0, "problem size must be positive");
        Self { paths }
    }
}

impl Default for Swaptions {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl Workload for Swaptions {
    fn name(&self) -> &'static str {
        "swaptions"
    }

    fn domain(&self) -> &'static str {
        "Financial Analysis (MapReduce)"
    }

    fn elements(&self) -> usize {
        // Volatility/drift accumulation across the four HJM factors plus the
        // payoff reduction per path.
        self.paths * FACTORS * 12
    }

    fn data_layout(&self) -> DataLayout {
        let mut l = DataLayout::new();
        for f in 0..FACTORS {
            l.input(format!("z{f}"), self.paths);
        }
        l.output("payoff", self.paths);
        l.output("sum", 1);
        l.output("sumsq", 1);
        l
    }

    fn build_with_bindings(
        &self,
        mem: &mut MemoryHierarchy,
        ctx: &VectorContext,
        plan: &PlannedLayout,
        bindings: &BufferBindings,
    ) -> WorkloadSetup {
        let n = self.paths;
        let mut gen = DataGen::for_workload(self.name());
        let z: Vec<Vec<f64>> = (0..FACTORS)
            .map(|f| {
                materialize_input(mem, plan, bindings, &format!("z{f}"), || {
                    gen.uniform_vec(n, -2.5, 2.5)
                })
            })
            .collect();
        let a_z: Vec<u64> = (0..FACTORS).map(|f| plan.addr(&format!("z{f}"))).collect();
        let a_payoff = plan.addr("payoff");
        let a_sum = plan.addr("sum");
        let a_sumsq = plan.addr("sumsq");

        let mvl = ctx.effective_mvl();
        let mut b = KernelBuilder::new("swaptions");

        // vsetvlmax preamble: splats must cover the full register whatever
        // VL a previously-run kernel left behind.
        b.set_vl(mvl);
        // Per-factor volatility and drift terms plus pricing constants are
        // splatted once and stay live across the whole kernel.
        let c_vol: Vec<_> = VOLS.iter().map(|&v| b.vsplat(v)).collect();
        let c_drift: Vec<_> = DRIFTS.iter().map(|&d| b.vsplat(d)).collect();
        let c_strike = b.vsplat(STRIKE);
        let c_disc = b.vsplat(DISCOUNT);
        // Payoff sum and sum-of-squares accumulators (lane 0 only).
        let mut acc_sum = b.vsplat(0.0);
        let mut acc_sumsq = b.vsplat(0.0);

        let mut strips = 0u64;
        let mut i = 0usize;
        while i < n {
            let vl = mvl.min(n - i);
            b.set_vl(vl);
            let off = (8 * i) as u64;
            let zr: Vec<_> = a_z.iter().map(|&a| b.vload(a + off)).collect();
            let r: Vec<_> = (0..FACTORS)
                .map(|f| b.vfmadd(zr[f], c_vol[f], c_drift[f]))
                .collect();
            let r01 = b.vfadd(r[0], r[1]);
            let r23 = b.vfadd(r[2], r[3]);
            let rate = b.vfadd(r01, r23);
            let fwd = b.vfexp(rate);
            let raw = b.vfsub(fwd, c_strike);
            let payoff = b.vfmax(raw, 0.0);
            let disc = b.vfmul(payoff, c_disc);
            b.vstore(disc, a_payoff + off);
            let sq = b.vfmul(disc, disc);
            let strip_sum = b.vfredsum(disc);
            acc_sum = b.vfadd(acc_sum, strip_sum);
            let strip_sq = b.vfredsum(sq);
            acc_sumsq = b.vfadd(acc_sumsq, strip_sq);
            strips += 1;
            i += vl;
        }
        b.set_vl(1);
        b.vstore(acc_sum, a_sum);
        b.vstore(acc_sumsq, a_sumsq);

        // Golden reference, mirroring the per-strip reduction order.
        let mut checks = Vec::with_capacity(n + 2);
        let mut payoffs = Vec::with_capacity(n);
        let mut total = 0.0f64;
        let mut total_sq = 0.0f64;
        let mut j = 0usize;
        while j < n {
            let vl = mvl.min(n - j);
            let mut s = 0.0f64;
            let mut ssq = 0.0f64;
            for k in 0..vl {
                let p = j + k;
                let rate: f64 = (0..FACTORS)
                    .map(|f| z[f][p].mul_add(VOLS[f], DRIFTS[f]))
                    .fold(0.0, |acc, v| acc + v);
                // Match the kernel's pairwise addition order.
                let r0 = z[0][p].mul_add(VOLS[0], DRIFTS[0]);
                let r1 = z[1][p].mul_add(VOLS[1], DRIFTS[1]);
                let r2 = z[2][p].mul_add(VOLS[2], DRIFTS[2]);
                let r3 = z[3][p].mul_add(VOLS[3], DRIFTS[3]);
                let _ = rate;
                let rate = (r0 + r1) + (r2 + r3);
                let fwd = rate.exp();
                let disc = (fwd - STRIKE).max(0.0) * DISCOUNT;
                checks.push(Check {
                    addr: a_payoff + (8 * p) as u64,
                    expected: disc,
                    tolerance: 1e-12,
                });
                payoffs.push(disc);
                s += disc;
                ssq += disc * disc;
            }
            total += s;
            total_sq += ssq;
            j += vl;
        }
        checks.push(Check {
            addr: a_sum,
            expected: total,
            tolerance: 1e-9,
        });
        checks.push(Check {
            addr: a_sumsq,
            expected: total_sq,
            tolerance: 1e-9,
        });

        WorkloadSetup {
            kernel: b.finish(),
            checks,
            strips,
            outputs: vec![
                OutputValues {
                    name: "payoff".to_string(),
                    base: a_payoff,
                    values: payoffs,
                },
                OutputValues {
                    name: "sum".to_string(),
                    base: a_sum,
                    values: vec![total],
                },
                OutputValues {
                    name: "sumsq".to_string(),
                    base: a_sumsq,
                    values: vec![total_sq],
                },
            ],
            warm_ranges: plan.warm_ranges(bindings),
            phase_marks: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_exceeds_half_the_architectural_registers() {
        let mut mem = MemoryHierarchy::default();
        let setup = Swaptions::new(256).build(&mut mem, &VectorContext::with_mvl(16));
        let p = setup.kernel.max_pressure();
        assert!(
            p > 16 && p <= 32,
            "swaptions pressure should exceed the LMUL2 budget but fit 32 registers, got {p}"
        );
    }

    #[test]
    fn check_count_covers_paths_and_reductions() {
        let mut mem = MemoryHierarchy::default();
        let setup = Swaptions::new(128).build(&mut mem, &VectorContext::with_mvl(32));
        assert_eq!(setup.checks.len(), 130);
        assert_eq!(setup.strips, 4);
    }

    #[test]
    fn payoffs_are_nonnegative() {
        let mut mem = MemoryHierarchy::default();
        let setup = Swaptions::new(64).build(&mut mem, &VectorContext::with_mvl(16));
        for c in &setup.checks {
            assert!(c.expected >= 0.0);
        }
    }

    #[test]
    fn longer_vectors_shrink_the_trace() {
        let mut mem = MemoryHierarchy::default();
        let short = Swaptions::new(512).build(&mut mem, &VectorContext::with_mvl(16));
        let long = Swaptions::new(512).build(&mut mem, &VectorContext::with_mvl(128));
        assert!(long.kernel.len() < short.kernel.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_paths_is_rejected() {
        let _ = Swaptions::new(0);
    }
}
