//! Deterministic input-data generation shared by the workloads.
//!
//! Every workload uses a seeded generator so simulation results are
//! reproducible across runs and configurations (the same program must be
//! produced for NATIVE, AVA and RG so their instruction counts are directly
//! comparable).

/// Deterministic data generator for workload inputs.
///
/// Implemented as a SplitMix64 stream so the workspace carries no external
/// RNG dependency: the sequence is fixed by the seed alone, which is exactly
/// the reproducibility property the workloads need.
#[derive(Debug)]
pub struct DataGen {
    state: u64,
}

impl DataGen {
    /// Creates a generator with a fixed seed per workload name, so each
    /// workload's inputs are stable but distinct.
    #[must_use]
    pub fn for_workload(name: &str) -> Self {
        let seed = name.bytes().fold(0xA5A5_5A5A_1234_5678u64, |acc, b| {
            acc.rotate_left(7) ^ u64::from(b)
        });
        Self::from_seed(seed)
    }

    /// Creates a generator from a raw seed (used by property tests that need
    /// a reproducible stream per case index).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next value of the raw SplitMix64 stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform double in `[0, 1)` (53 random mantissa bits).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform value in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// A vector of uniform values in `[lo, hi)`.
    pub fn uniform_vec(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.uniform(lo, hi)).collect()
    }

    /// A vector of positive values bounded away from zero (safe for
    /// divisions, logarithms and square roots).
    pub fn positive_vec(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        assert!(lo > 0.0, "lower bound must be positive");
        self.uniform_vec(n, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_workload() {
        let a: Vec<f64> = DataGen::for_workload("axpy").uniform_vec(8, 0.0, 1.0);
        let b: Vec<f64> = DataGen::for_workload("axpy").uniform_vec(8, 0.0, 1.0);
        let c: Vec<f64> = DataGen::for_workload("somier").uniform_vec(8, 0.0, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bounds_are_respected() {
        let mut g = DataGen::for_workload("t");
        for v in g.uniform_vec(1000, -2.0, 3.0) {
            assert!((-2.0..3.0).contains(&v));
        }
        for v in g.positive_vec(1000, 0.5, 1.5) {
            assert!((0.5..1.5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn positive_vec_rejects_nonpositive_bounds() {
        let _ = DataGen::for_workload("t").positive_vec(4, 0.0, 1.0);
    }
}
