//! Dual-issue in-order scalar core cost model.
//!
//! The scalar core's work in a stripmined vector loop is per-iteration
//! bookkeeping: pointer bumps, trip-count arithmetic, the `vsetvl`, the
//! backward branch, plus issuing each vector instruction towards the VPU
//! queue. Because the core is dual-issue and runs at 2 GHz against the VPU's
//! 1 GHz, this work almost always hides underneath vector execution; the
//! model computes it explicitly so the full-system simulator can take the
//! maximum of the two and so low-DLP configurations show the scalar floor.

/// Static configuration of the scalar core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarConfig {
    /// Instructions issued per scalar cycle (2 = dual issue).
    pub issue_width: u32,
    /// Scalar clock in GHz.
    pub clock_ghz: f64,
    /// VPU clock in GHz (for converting to VPU cycles).
    pub vpu_clock_ghz: f64,
    /// Scalar bookkeeping instructions per stripmined loop iteration
    /// (pointer updates, trip-count decrement, compare, branch).
    pub loop_overhead_instrs: u32,
    /// Scalar instructions needed to hand one vector instruction to the VPU.
    pub dispatch_instrs_per_vector: u32,
}

impl Default for ScalarConfig {
    fn default() -> Self {
        Self {
            issue_width: 2,
            clock_ghz: 2.0,
            vpu_clock_ghz: 1.0,
            loop_overhead_instrs: 6,
            dispatch_instrs_per_vector: 1,
        }
    }
}

/// The scalar-side cost of running a vectorised kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarCost {
    /// Scalar instructions executed.
    pub instructions: u64,
    /// Scalar-core cycles.
    pub scalar_cycles: u64,
    /// The same cost expressed in VPU cycles (the VPU clock is the slower
    /// domain used for reporting).
    pub vpu_cycles: u64,
}

/// Scalar-core cost model.
///
/// ```
/// use ava_scalar::{ScalarConfig, ScalarCore};
/// let core = ScalarCore::new(ScalarConfig::default());
/// let cost = core.loop_cost(100, 500);
/// assert!(cost.vpu_cycles < cost.scalar_cycles, "2 GHz core, 1 GHz VPU");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarCore {
    config: ScalarConfig,
}

impl ScalarCore {
    /// Creates the cost model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration contains zero issue width or clocks.
    #[must_use]
    pub fn new(config: ScalarConfig) -> Self {
        assert!(config.issue_width >= 1, "issue width must be at least 1");
        assert!(
            config.clock_ghz > 0.0 && config.vpu_clock_ghz > 0.0,
            "clocks must be positive"
        );
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ScalarConfig {
        &self.config
    }

    /// Cost of a stripmined loop with `strips` iterations issuing
    /// `vector_instrs` vector instructions in total.
    #[must_use]
    pub fn loop_cost(&self, strips: u64, vector_instrs: u64) -> ScalarCost {
        let instructions = strips * u64::from(self.config.loop_overhead_instrs)
            + vector_instrs * u64::from(self.config.dispatch_instrs_per_vector);
        let scalar_cycles = instructions.div_ceil(u64::from(self.config.issue_width));
        let ratio = self.config.clock_ghz / self.config.vpu_clock_ghz;
        let vpu_cycles = (scalar_cycles as f64 / ratio).ceil() as u64;
        ScalarCost {
            instructions,
            scalar_cycles,
            vpu_cycles,
        }
    }

    /// Combines the scalar-side cost with the VPU's cycle count: the scalar
    /// core and the decoupled VPU overlap, so the kernel time is the maximum
    /// of the two domains (both expressed in VPU cycles).
    #[must_use]
    pub fn combine(&self, vpu_cycles: u64, cost: &ScalarCost) -> u64 {
        vpu_cycles.max(cost.vpu_cycles)
    }
}

impl Default for ScalarCore {
    fn default() -> Self {
        Self::new(ScalarConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_issue_halves_the_cycle_count() {
        let core = ScalarCore::default();
        let cost = core.loop_cost(10, 40);
        assert_eq!(cost.instructions, 10 * 6 + 40);
        assert_eq!(cost.scalar_cycles, 50);
    }

    #[test]
    fn clock_ratio_converts_to_vpu_cycles() {
        let core = ScalarCore::default();
        let cost = core.loop_cost(10, 40);
        assert_eq!(
            cost.vpu_cycles, 25,
            "2 GHz scalar cycles halve in the 1 GHz domain"
        );
    }

    #[test]
    fn combine_takes_the_slower_domain() {
        let core = ScalarCore::default();
        let cost = core.loop_cost(1000, 4000);
        assert_eq!(core.combine(10_000, &cost), 10_000);
        assert_eq!(core.combine(100, &cost), cost.vpu_cycles);
    }

    #[test]
    fn fewer_strips_mean_less_scalar_work() {
        let core = ScalarCore::default();
        let short = core.loop_cost(128, 128 * 5);
        let long = core.loop_cost(16, 16 * 5);
        assert!(long.instructions < short.instructions);
        assert!(long.vpu_cycles < short.vpu_cycles);
    }

    #[test]
    fn single_issue_core_is_slower() {
        let single = ScalarCore::new(ScalarConfig {
            issue_width: 1,
            ..ScalarConfig::default()
        });
        let dual = ScalarCore::default();
        assert!(single.loop_cost(10, 40).scalar_cycles > dual.loop_cost(10, 40).scalar_cycles);
    }

    #[test]
    #[should_panic(expected = "issue width")]
    fn zero_issue_width_is_rejected() {
        let _ = ScalarCore::new(ScalarConfig {
            issue_width: 0,
            ..ScalarConfig::default()
        });
    }
}
