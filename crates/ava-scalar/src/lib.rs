//! # ava-scalar — the scalar core that drives the decoupled VPU
//!
//! The evaluated platform attaches the VPU to a dual-issue, in-order 64-bit
//! RISC-V core running at twice the VPU frequency (Table II). For the
//! vector-dominated workloads of the paper the scalar core contributes loop
//! bookkeeping (address updates, trip-count tests, branches) and the
//! dispatch of vector instructions into the VPU's front end. This crate
//! models that contribution so the full-system simulator can account for it
//! and for the 2 GHz / 1 GHz clock-domain crossing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;

pub use crate::core::{ScalarConfig, ScalarCore, ScalarCost};
