//! # ava — Adaptable Vector Architecture reproduction (facade crate)
//!
//! This crate re-exports the whole workspace behind a single dependency so
//! downstream users (and the runnable examples in `examples/`) can write
//! `use ava::...` instead of juggling nine crates:
//!
//! * [`isa`] — the vector instruction set, registers and vector-length state;
//! * [`memory`] — caches, DRAM and the functional memory;
//! * [`compiler`] — the intrinsics-style kernel builder and the register
//!   allocator that emits spill code;
//! * [`vpu`] — the AVA / NATIVE / RG vector processing unit model (the
//!   paper's contribution);
//! * [`scalar`] — the dual-issue scalar core cost model;
//! * [`sim`] — full-system configurations and the experiment runner;
//! * [`workloads`] — the six RiVEC-style applications;
//! * [`energy`] — the McPAT-style area/energy model and the analytical
//!   post-PnR estimator.
//!
//! ```
//! use ava::sim::{run_workload, ScenarioConfig};
//! use ava::workloads::Axpy;
//!
//! let report = run_workload(&Axpy::new(256), &ScenarioConfig::ava_x(4));
//! assert!(report.validated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ava_compiler as compiler;
pub use ava_energy as energy;
pub use ava_isa as isa;
pub use ava_memory as memory;
pub use ava_scalar as scalar;
pub use ava_sim as sim;
pub use ava_vpu as vpu;
pub use ava_workloads as workloads;
