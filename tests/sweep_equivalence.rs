//! The sweep engine's core guarantee: a parallel sweep is observably
//! indistinguishable from running the same grid serially. Every counter in
//! every report — cycles, instruction counts, memory traffic, validation —
//! must match bit-for-bit, at any thread count, with the shared program
//! cache enabled (its hits must not perturb results either) and with the
//! cost-sorted scheduler reordering execution under the hood.

use std::sync::Arc;

use ava::isa::Lmul;
use ava::sim::{run_workload, ScenarioConfig, Sweep};
use ava::workloads::{
    composite, Axpy, Blackscholes, Composite, LavaMd2, ParticleFilter, SharedWorkload, Somier,
    Swaptions,
};

/// A 42-point grid (7 workloads × 6 configurations) covering all three
/// register-file organisations, the spill-heavy and swap-heavy regimes, and
/// one deliberately skewed large point (the oversized Blackscholes) whose
/// cost estimate dwarfs the rest — the case the cost-sorted scheduler
/// exists for.
fn grid() -> Sweep {
    let workloads: Vec<SharedWorkload> = vec![
        Arc::new(Axpy::new(512)),
        Arc::new(Blackscholes::new(128)),
        Arc::new(LavaMd2::new(16, 2)),
        Arc::new(ParticleFilter::new(256, 32)),
        Arc::new(Somier::new(512)),
        Arc::new(Swaptions::new(128)),
        // The skewed point: 4x the options of the regular Blackscholes.
        Arc::new(Blackscholes::new(512)),
    ];
    let systems = vec![
        ScenarioConfig::native_x(1),
        ScenarioConfig::native_x(8),
        ScenarioConfig::ava_x(2),
        ScenarioConfig::ava_x(8),
        ScenarioConfig::rg_lmul(Lmul::M4),
        ScenarioConfig::rg_lmul(Lmul::M8),
    ];
    Sweep::grid(workloads, systems)
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let sweep = grid();
    assert!(
        sweep.len() >= 30,
        "the acceptance grid must have at least 30 points"
    );

    let serial = sweep.runner().threads(1).run().into_reports();
    assert_eq!(serial.len(), sweep.len());
    for threads in [2, 4, 16] {
        let parallel = sweep.runner().threads(threads).run().into_reports();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            let point = format!("{} on {} ({threads} threads)", s.workload, s.config);
            assert_eq!(
                s.workload, p.workload,
                "{point}: order must be deterministic"
            );
            assert_eq!(s.config, p.config, "{point}: order must be deterministic");
            assert_eq!(s.cycles, p.cycles, "{point}: cycles");
            assert_eq!(s.vpu_cycles, p.vpu_cycles, "{point}: vpu cycles");
            assert_eq!(s.validated, p.validated, "{point}: validation");
            assert_eq!(
                s.validation_error, p.validation_error,
                "{point}: validation error"
            );
            assert_eq!(
                s.vpu.issued_instrs(),
                p.vpu.issued_instrs(),
                "{point}: issued instrs"
            );
            assert_eq!(s.vpu.swap_ops(), p.vpu.swap_ops(), "{point}: swap ops");
            assert_eq!(s.vpu.spill_ops(), p.vpu.spill_ops(), "{point}: spill ops");
            assert_eq!(
                s.memory_instructions(),
                p.memory_instructions(),
                "{point}: memory instrs"
            );
            assert_eq!(
                s.compiler_spill_loads, p.compiler_spill_loads,
                "{point}: spill loads"
            );
            assert_eq!(
                s.compiler_spill_stores, p.compiler_spill_stores,
                "{point}: spill stores"
            );
            assert_eq!(
                s.register_pressure, p.register_pressure,
                "{point}: pressure"
            );
            // Debug formatting covers every remaining field (mem + scalar
            // stats) without enumerating them one by one.
            assert_eq!(format!("{s:?}"), format!("{p:?}"), "{point}: full report");
        }
    }
}

#[test]
fn sweep_matches_the_plain_runner_point_by_point() {
    // The sweep (cached compiles included) must agree with independent
    // `run_workload` calls — the path every pre-sweep caller used.
    let sweep = grid();
    let reports = sweep.runner().run().into_reports();
    let systems = sweep.systems().to_vec();
    for (i, report) in reports.iter().enumerate() {
        let workload = &sweep.workloads()[i / systems.len()];
        let system = &systems[i % systems.len()];
        let direct = run_workload(workload.as_ref(), system);
        assert_eq!(
            format!("{report:?}"),
            format!("{direct:?}"),
            "{} on {}",
            report.workload,
            report.config
        );
    }
}

#[test]
fn every_point_of_the_acceptance_grid_validates() {
    for r in grid().runner().run().into_reports() {
        assert!(
            r.validated,
            "{} on {}: {:?}",
            r.workload, r.config, r.validation_error
        );
    }
}

#[test]
fn skewed_grid_stays_in_grid_order_and_identical_to_serial() {
    // One huge point and many tiny ones: the scheduler pulls the huge point
    // to the front of the execution queue, so grid order of the *results*
    // and bit-identity with a serial run are exactly what this shape
    // stresses.
    let workloads: Vec<SharedWorkload> = vec![
        Arc::new(Axpy::new(64)),
        Arc::new(Axpy::new(96)),
        Arc::new(Axpy::new(128)),
        Arc::new(Blackscholes::new(512)), // the huge point
        Arc::new(Axpy::new(160)),
        Arc::new(Axpy::new(192)),
        Arc::new(Axpy::new(224)),
        Arc::new(Axpy::new(256)),
    ];
    let systems = vec![ScenarioConfig::native_x(1)];
    let sweep = Sweep::grid(workloads.clone(), systems);

    // The huge point really is the most expensive in the scheduler's eyes.
    let costs: Vec<u64> = (0..sweep.len()).map(|i| sweep.point_cost(i)).collect();
    assert_eq!(
        costs.iter().max(),
        Some(&costs[3]),
        "the skewed Blackscholes must carry the largest cost estimate"
    );

    let serial = sweep.runner().threads(1).run().into_reports();
    for threads in [2, 3, 8] {
        let report = sweep.runner().threads(threads).run();
        assert_eq!(report.reports.len(), serial.len());
        for (i, (s, p)) in serial.iter().zip(&report.reports).enumerate() {
            assert_eq!(
                p.workload,
                workloads[i].name(),
                "results must come back in grid order, not execution order"
            );
            assert_eq!(format!("{s:?}"), format!("{p:?}"), "point {i} must match");
        }
        // Instrumentation is present for every point and workers stayed in
        // range.
        assert_eq!(report.points.len(), serial.len());
        assert!(report.points.iter().all(|p| p.worker < threads));
        assert_eq!(report.points[3].cost_estimate, costs[3]);
    }
}

/// The acceptance grid of the scenario-axis refactor: one `Sweep` built
/// from `ScenarioConfig` axis builders — MVL {128, 256, 512} (the Table I
/// extrapolation) × two L2 capacities — over a single kernel and a
/// multi-kernel `Composite`, must validate everywhere and stay bit-identical
/// between serial and parallel execution.
#[test]
fn mvl_and_cache_axis_grid_is_bit_identical_and_validated() {
    let scenarios =
        ScenarioConfig::axis_l2_kib(&ScenarioConfig::axis_mvl(&[128, 256, 512]), &[256, 1024]);
    assert_eq!(scenarios.len(), 6);
    let workloads: Vec<SharedWorkload> = vec![
        Arc::new(Axpy::new(2048)),
        Arc::new(Composite::new(vec![
            Arc::new(Axpy::new(1024)),
            Arc::new(Blackscholes::new(128)),
            Arc::new(Somier::new(512)),
        ])),
    ];
    let sweep = Sweep::grid(workloads, scenarios);
    assert_eq!(sweep.len(), 12);

    let serial = sweep.runner().threads(1).run().into_reports();
    for r in &serial {
        assert!(
            r.validated,
            "{} on {}: {:?}",
            r.workload, r.config, r.validation_error
        );
        // Every point of this grid carries both axis values.
        let names: Vec<&str> = r.axes.iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["mvl", "l2_kib"], "{}", r.config);
    }
    for threads in [2, 5] {
        let parallel = sweep.runner().threads(threads).run().into_reports();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                format!("{s:?}"),
                format!("{p:?}"),
                "{} on {} ({threads} threads)",
                s.workload,
                s.config
            );
        }
    }
    // The extrapolated-MVL points genuinely run longer vectors: each MVL
    // doubling quarters/halves the strip count, so the issued vector
    // instruction count strictly decreases along the axis.
    let axpy_l2_256: Vec<_> = serial
        .iter()
        .filter(|r| {
            r.workload == "axpy" && r.axes.iter().any(|a| a.name == "l2_kib" && a.value == 256)
        })
        .collect();
    assert_eq!(axpy_l2_256.len(), 3);
    assert!(
        axpy_l2_256[2].vpu.issued_instrs() < axpy_l2_256[1].vpu.issued_instrs()
            && axpy_l2_256[1].vpu.issued_instrs() < axpy_l2_256[0].vpu.issued_instrs(),
        "longer MVLs must issue fewer vector instructions: {} / {} / {}",
        axpy_l2_256[0].vpu.issued_instrs(),
        axpy_l2_256[1].vpu.issued_instrs(),
        axpy_l2_256[2].vpu.issued_instrs()
    );
}

/// The two-phase dataflow pipeline of the chained-validation satellite:
/// axpy's in-place output feeds somier's velocity (force-integration)
/// array.
fn axpy_feeds_somier(n: usize) -> Composite {
    Composite::pipelined(
        vec![Arc::new(Axpy::new(n)), Arc::new(Somier::new(n))],
        vec![composite::links(&[("y", "v")])],
    )
}

/// The pipelined acceptance grid: a dataflow composite whose phase 2 reads
/// phase 1's output, swept over scenario axes — every point must validate
/// against the *chained* scalar reference, carry per-phase breakdowns, and
/// stay bit-identical between serial and parallel execution.
#[test]
fn pipelined_grid_is_bit_identical_validated_and_phase_attributed() {
    let scenarios =
        ScenarioConfig::axis_l2_kib(&ScenarioConfig::axis_mvl(&[128, 256]), &[256, 1024]);
    let workloads: Vec<SharedWorkload> = vec![
        Arc::new(axpy_feeds_somier(1024)),
        Arc::new(Composite::pipelined(
            vec![
                Arc::new(Axpy::new(512)),
                Arc::new(Somier::new(512)),
                Arc::new(Axpy::new(512)),
            ],
            vec![
                composite::links(&[("y", "v")]),
                composite::links(&[("xout", "x"), ("vout", "y")]),
            ],
        )),
    ];
    let sweep = Sweep::grid(workloads, scenarios);
    assert_eq!(sweep.len(), 8);

    let serial = sweep.runner().threads(1).run().into_reports();
    for r in &serial {
        assert_eq!(r.workload, "pipelined");
        assert!(
            r.validated,
            "{} on {}: {:?}",
            r.workload, r.config, r.validation_error
        );
        // Per-phase cycle/memory breakdowns partition the run's totals.
        assert!(r.phases.len() >= 2, "{}", r.config);
        assert_eq!(
            r.phases.iter().map(|p| p.vpu_cycles).sum::<u64>(),
            r.vpu_cycles,
            "{}: phase cycles must partition the total",
            r.config
        );
        assert_eq!(
            r.phases.iter().map(|p| p.vpu.issued_instrs()).sum::<u64>(),
            r.vpu.issued_instrs(),
            "{}: phase instruction counts must partition the total",
            r.config
        );
        assert_eq!(
            r.phases.iter().map(|p| p.mem.vmu_bytes).sum::<u64>(),
            r.mem.vmu_bytes,
            "{}: phase VMU traffic must partition the total",
            r.config
        );
        // The breakdown reaches the JSON report.
        let json = r.to_json().to_string();
        assert!(json.contains("\"phases\":[{\"name\":\"0:axpy\""), "{json}");
    }
    for threads in [2, 5] {
        let parallel = sweep.runner().threads(threads).run().into_reports();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                format!("{s:?}"),
                format!("{p:?}"),
                "{} on {} ({threads} threads)",
                s.workload,
                s.config
            );
        }
    }
}

/// A nested pipeline — an outer composite binding into an inner pipelined
/// composite through its prefixed buffer name — must simulate and validate
/// end to end (the external-bindings forwarding path of
/// `Composite::build_with_bindings`).
#[test]
fn nested_pipelined_composite_simulates_and_validates() {
    let n = 256;
    let inner: SharedWorkload = Arc::new(Composite::pipelined(
        vec![Arc::new(Somier::new(n)), Arc::new(Axpy::new(n))],
        vec![composite::links(&[("xout", "x"), ("vout", "y")])],
    ));
    let outer = Composite::pipelined(
        vec![Arc::new(Axpy::new(n)), inner],
        vec![composite::links(&[("y", "p0.v")])],
    );
    let report = run_workload(&outer, &ScenarioConfig::ava_x(4));
    assert!(report.validated, "{:?}", report.validation_error);
    assert_eq!(report.phases.len(), 2);
    assert_eq!(report.phases[1].name, "1:pipelined");
}

/// The chained golden reference is provably *chained*: somier's phase-2
/// checks are only satisfiable because its reference consumed axpy's real
/// (reference) output. Somier run standalone on its own generated velocity
/// data expects different values at the same stage.
#[test]
fn pipelined_validation_requires_the_chained_reference() {
    let n = 512;
    let scenario = ScenarioConfig::ava_x(4);
    let piped = run_workload(&axpy_feeds_somier(n), &scenario);
    assert!(piped.validated, "{:?}", piped.validation_error);

    // The same phases without the data binding expect different outputs:
    // substituting the independent composite's checks for the pipelined
    // ones must fail against the pipelined run's memory image — which is
    // exactly what would happen if the golden references were *not*
    // chained (each phase checked against its own generated inputs).
    let mut mem = ava::memory::MemoryHierarchy::default();
    let ctx = ava::isa::VectorContext::with_mvl(64);
    let chained = ava::workloads::Workload::build(&axpy_feeds_somier(n), &mut mem, &ctx);
    let mut mem2 = ava::memory::MemoryHierarchy::default();
    let unchained = ava::workloads::Workload::build(
        &Composite::new(vec![Arc::new(Axpy::new(n)), Arc::new(Somier::new(n))]),
        &mut mem2,
        &ctx,
    );
    // Write the chained expectations into memory (what a correct pipelined
    // simulation produces) and validate the unchained checks against it.
    for c in &chained.checks {
        mem.write_f64(c.addr, c.expected);
    }
    assert!(ava::workloads::validate(&mem, &chained.checks).is_ok());
    let somier_checks: Vec<_> = unchained
        .checks
        .iter()
        .filter(|c| {
            // Only somier's checks are comparable (axpy's were superseded
            // in the pipelined setup).
            let (s, e) = unchained.output("p1.vout").range();
            let (xs, xe) = unchained.output("p1.xout").range();
            (c.addr >= s && c.addr < e) || (c.addr >= xs && c.addr < xe)
        })
        .copied()
        .collect();
    assert!(
        ava::workloads::validate(&mem, &somier_checks).is_err(),
        "unchained somier expectations must NOT match the chained pipeline"
    );
}

/// A deliberately broken binding — the consumer rebased onto the wrong
/// producer buffer while the reference chain still uses the right values —
/// must fail validation when simulated.
#[test]
fn broken_binding_fails_validation() {
    use ava::compiler::RebaseRule;
    use ava::workloads::{BufferBindings, Workload, WorkloadSetup};

    struct Broken;
    impl Workload for Broken {
        fn name(&self) -> &'static str {
            "broken-binding"
        }
        fn domain(&self) -> &'static str {
            "test"
        }
        fn elements(&self) -> usize {
            Axpy::new(256).elements() + Somier::new(256).elements()
        }
        fn data_layout(&self) -> ava::workloads::DataLayout {
            // Same union layout a pipelined composite would plan.
            Composite::new(vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))]).data_layout()
        }
        fn build_with_bindings(
            &self,
            mem: &mut ava::memory::MemoryHierarchy,
            ctx: &ava::isa::VectorContext,
            plan: &ava::workloads::PlannedLayout,
            _bindings: &BufferBindings,
        ) -> WorkloadSetup {
            let axpy = Axpy::new(256);
            let somier = Somier::new(256);
            let p0 = plan.subset("p0.");
            let p1 = plan.subset("p1.");
            let part0 = axpy.build_with_bindings(mem, ctx, &p0, &BufferBindings::none());
            // The reference chain is correct (somier's v reference = axpy's
            // y reference)...
            let mut bindings = BufferBindings::none();
            bindings.bind("v", part0.output("y").values.clone());
            let part1 = somier.build_with_bindings(mem, ctx, &p1, &bindings);
            let mut setup = part0.clone();
            // ...but the kernel rebinding points somier's velocity loads at
            // axpy's *input* array instead of its output.
            setup.kernel.concat_remapped(
                &part1.kernel,
                &[RebaseRule {
                    old_base: p1.buffer("v").base,
                    bytes: p1.buffer("v").bytes(),
                    new_base: p0.addr("x"),
                }],
            );
            // Downstream supersedes the consumed y checks, as the real
            // composite does.
            let (ys, ye) = part0.output("y").range();
            setup.checks.retain(|c| c.addr < ys || c.addr >= ye);
            setup.checks.extend(part1.checks);
            setup.strips += part1.strips;
            setup.warm_ranges.extend(part1.warm_ranges);
            setup
        }
    }

    let report = run_workload(&Broken, &ScenarioConfig::ava_x(4));
    assert!(
        !report.validated,
        "a mis-bound pipeline must fail its chained checks"
    );
    let err = report.validation_error.unwrap();
    assert!(err.contains("expected"), "{err}");
}

/// The iterative-solver mix of ISSUE 5's acceptance grid: the somier
/// relaxation body unrolled `iters` times with ping-pong carry links.
fn solver(n: usize, iters: usize) -> Composite {
    Composite::iterated(
        Arc::new(Somier::relaxation(n)),
        iters,
        composite::links(&[("xout", "x"), ("vout", "v")]),
    )
}

/// The solver acceptance grid: MVL × L2 × iteration count. Every point must
/// validate against the `n`-step scalar reference (only the converged state
/// is checked), report one `iter`-labelled breakdown per iteration that
/// partitions the run totals exactly, and stay bit-identical between serial
/// and parallel execution. Odd and even iteration counts cover both
/// ping-pong parities.
#[test]
fn iterated_solver_grid_is_bit_identical_validated_and_iteration_attributed() {
    let scenarios =
        ScenarioConfig::axis_l2_kib(&ScenarioConfig::axis_mvl(&[128, 256]), &[256, 1024]);
    let iter_axis = [3usize, 4];
    let workloads: Vec<SharedWorkload> = iter_axis
        .iter()
        .map(|&iters| Arc::new(solver(1024, iters)) as SharedWorkload)
        .collect();
    let sweep = Sweep::grid(workloads, scenarios);
    assert_eq!(sweep.len(), 8);

    let serial = sweep.runner().threads(1).run().into_reports();
    for (i, r) in serial.iter().enumerate() {
        let iters = iter_axis[i / 4];
        assert_eq!(r.workload, "iterated");
        assert!(
            r.validated,
            "{iters}-step solver on {}: {:?}",
            r.config, r.validation_error
        );
        // One breakdown per unrolled iteration, labelled with its index.
        assert_eq!(r.phases.len(), iters, "{}", r.config);
        for (k, phase) in r.phases.iter().enumerate() {
            assert_eq!(phase.iter, Some(k), "{}", r.config);
            assert_eq!(phase.name, format!("it{k}:somier"));
        }
        // The per-iteration counters partition the run totals exactly.
        assert_eq!(
            r.phases.iter().map(|p| p.vpu_cycles).sum::<u64>(),
            r.vpu_cycles,
            "{}: iteration cycles must partition the total",
            r.config
        );
        assert_eq!(
            r.phases.iter().map(|p| p.vpu.issued_instrs()).sum::<u64>(),
            r.vpu.issued_instrs(),
            "{}: iteration instruction counts must partition the total",
            r.config
        );
        assert_eq!(
            r.phases.iter().map(|p| p.mem.vmu_bytes).sum::<u64>(),
            r.mem.vmu_bytes,
            "{}: iteration VMU traffic must partition the total",
            r.config
        );
    }
    for threads in [2, 5] {
        let parallel = sweep.runner().threads(threads).run().into_reports();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                format!("{s:?}"),
                format!("{p:?}"),
                "{} on {} ({threads} threads)",
                s.workload,
                s.config
            );
        }
    }
}

/// A deliberately mis-wired carry link — the reference chain correctly
/// iterated, but the unrolled kernel missing the ping-pong rebase, so
/// iteration 2 re-reads iteration 1's *inputs* instead of its outputs —
/// must fail validation when simulated.
#[test]
fn mis_wired_carry_link_fails_validation() {
    use ava::workloads::{BufferBindings, Workload, WorkloadSetup};

    struct MisWired;
    impl Workload for MisWired {
        fn name(&self) -> &'static str {
            "mis-wired-carry"
        }
        fn domain(&self) -> &'static str {
            "test"
        }
        fn elements(&self) -> usize {
            solver(256, 2).elements()
        }
        fn data_layout(&self) -> ava::workloads::DataLayout {
            solver(256, 2).data_layout()
        }
        fn build_with_bindings(
            &self,
            mem: &mut ava::memory::MemoryHierarchy,
            ctx: &ava::isa::VectorContext,
            plan: &ava::workloads::PlannedLayout,
            _bindings: &BufferBindings,
        ) -> WorkloadSetup {
            let body = Somier::relaxation(256);
            let sub = plan.subset("p0.");
            let first = body.build_with_bindings(mem, ctx, &sub, &BufferBindings::none());
            // The reference chain is correct: iteration 2's golden
            // reference consumes iteration 1's reference outputs...
            let mut carried = BufferBindings::none();
            carried.bind("x", first.output("xout").values.clone());
            carried.bind("v", first.output("vout").values.clone());
            let second = body.build_with_bindings(mem, ctx, &sub, &carried);
            // ...but the kernel is concatenated WITHOUT the ping-pong
            // rebase map, so at run time iteration 2 re-reads the original
            // input arrays and recomputes iteration 1's state.
            let mut setup = first;
            setup.kernel.concat(&second.kernel);
            setup.strips += second.strips;
            // Only the "converged" state is checked, as in the real
            // iterated composite.
            setup.checks = second.checks;
            setup.outputs = second.outputs;
            setup
        }
    }

    let report = run_workload(&MisWired, &ScenarioConfig::ava_x(4));
    assert!(
        !report.validated,
        "a carry link missing its rebase must fail the iterated checks"
    );
    let err = report.validation_error.unwrap();
    assert!(err.contains("expected"), "{err}");
}

/// An iterated composite nested inside an outer pipeline, with the outer
/// link feeding a NON-carried input of the solver body: the kernel re-reads
/// the producer's array on every iteration, so the chained reference must
/// bind the external values on every iteration too — this wiring passes
/// every construction check and must validate when simulated.
#[test]
fn nested_iterated_composite_with_external_binding_validates() {
    let n = 256;
    let inner: SharedWorkload = Arc::new(Composite::iterated(
        Arc::new(Somier::relaxation(n)),
        2,
        composite::links(&[("xout", "x")]), // positions carry; velocities do not
    ));
    let outer = Composite::pipelined(
        vec![Arc::new(Axpy::new(n)), inner],
        vec![composite::links(&[("y", "p0.v")])],
    );
    let report = run_workload(&outer, &ScenarioConfig::ava_x(4));
    assert!(report.validated, "{:?}", report.validation_error);
    assert_eq!(report.phases.len(), 2);
}

/// A backward link (producer two phases upstream) must simulate and
/// validate end to end, chaining the reference across the intermediate
/// phase.
#[test]
fn backward_linked_pipeline_simulates_and_validates() {
    let piped = Composite::pipelined(
        vec![
            Arc::new(Axpy::new(512)),
            Arc::new(Blackscholes::new(64)),
            Arc::new(Somier::new(512)),
        ],
        vec![Vec::new(), composite::links_from(&[(0, "y", "v")])],
    );
    let report = run_workload(&piped, &ScenarioConfig::ava_x(4));
    assert!(report.validated, "{:?}", report.validation_error);
    assert_eq!(report.phases.len(), 3);
    // (That the chain is load-bearing — somier's reference consuming
    // axpy's across the intermediate stage — is pinned by the
    // `backward_links_chain_from_any_earlier_phase` unit test.)
}

/// The equivalence guarantee extends to the result store: the acceptance
/// grid run with a store attached — cold (every point simulated and
/// checkpointed) and then fully warm (every point deserialised from disk) —
/// must stay bit-identical to the plain serial run, at any thread count.
#[test]
fn store_backed_sweep_is_bit_identical_to_serial() {
    let dir = std::env::temp_dir().join(format!(
        "ava-sweep-equivalence-store-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ava::sim::ResultStore::open(&dir).unwrap();

    let sweep = grid();
    let serial = sweep.runner().threads(1).run().into_reports();

    let cold = sweep.runner().threads(4).store(&store).run();
    assert_eq!(cold.store_hits, 0);
    assert_eq!(cold.store_misses, sweep.len() as u64);
    let warm = sweep.runner().threads(4).store(&store).run();
    assert_eq!(warm.store_hits, sweep.len() as u64);
    assert_eq!(warm.store_misses, 0);

    for run in [&cold, &warm] {
        assert_eq!(run.reports.len(), serial.len());
        for (s, p) in serial.iter().zip(&run.reports) {
            assert_eq!(
                format!("{s:?}"),
                format!("{p:?}"),
                "{} on {}: store-backed run must match the serial run",
                s.workload,
                s.config
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// A composite point must agree exactly with the plain runner on the same
/// scenario — the concatenated phases go through the shared compile cache
/// like any other kernel.
#[test]
fn composite_points_match_the_plain_runner() {
    let mix: SharedWorkload = Arc::new(Composite::new(vec![
        Arc::new(Axpy::new(512)),
        Arc::new(Somier::new(256)),
    ]));
    let scenario = ScenarioConfig::ava_x(8).with_mvl(256).with_l2_kib(512);
    let sweep = Sweep::grid(vec![Arc::clone(&mix)], vec![scenario.clone()]);
    let from_sweep = sweep.runner().run().into_reports();
    let direct = run_workload(mix.as_ref(), &scenario);
    assert_eq!(format!("{:?}", from_sweep[0]), format!("{direct:?}"));
    assert!(direct.validated, "{:?}", direct.validation_error);
}
