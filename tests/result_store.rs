//! The result store's core guarantees, exercised end to end through the
//! sweep engine: a killed sweep resumes bit-identically, a warm rerun
//! simulates nothing, invalidation is scoped to the workload that changed,
//! and a damaged store entry degrades to a miss instead of a crash.

use std::path::PathBuf;
use std::sync::Arc;

use ava::sim::{ResultStore, ScenarioConfig, Sweep, SweepReport};
use ava::workloads::{Axpy, SharedWorkload, Somier};

fn store_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ava-result-store-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scenarios() -> Vec<ScenarioConfig> {
    vec![ScenarioConfig::native_x(1), ScenarioConfig::ava_x(4)]
}

fn grid(axpy_n: usize) -> Sweep {
    let workloads: Vec<SharedWorkload> =
        vec![Arc::new(Axpy::new(axpy_n)), Arc::new(Somier::new(256))];
    Sweep::grid(workloads, scenarios())
}

fn assert_reports_identical(a: &SweepReport, b: &SweepReport, context: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{context}");
    for (x, y) in a.reports.iter().zip(&b.reports) {
        assert_eq!(
            format!("{x:?}"),
            format!("{y:?}"),
            "{context}: {} on {}",
            x.workload,
            x.config
        );
    }
}

/// A sweep killed partway through leaves checkpoints for the finished
/// points; resuming the full grid against the same store must produce a
/// report bit-identical to an uninterrupted cold run, simulating only the
/// missing points.
#[test]
fn killed_sweep_resumes_bit_identically() {
    let dir = store_dir("resume");
    let store = ResultStore::open(&dir).unwrap();
    let sweep = grid(256);
    let uninterrupted = sweep.runner().threads(1).run();

    // "Kill" a run after two of the four points: execute only a subset of
    // the grid with the store attached, exactly what a checkpointing sweep
    // has persisted at the moment it dies.
    let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))];
    let partial = Sweep::from_points(workloads, scenarios(), vec![(0, 0), (1, 1)]);
    let killed = partial.runner().threads(1).store(&store).run();
    assert_eq!(killed.store_misses, 2);
    assert_eq!(store.len(), 2, "two checkpoints on disk at kill time");

    // The resumed run covers the full grid: the two checkpointed points are
    // served from disk, the other two are simulated and checkpointed.
    let resumed = sweep.runner().threads(2).store(&store).run();
    assert_eq!(resumed.store_hits, 2);
    assert_eq!(resumed.store_misses, 2);
    assert_eq!(store.len(), 4);
    assert_reports_identical(&uninterrupted, &resumed, "resumed vs uninterrupted");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A fully warm rerun performs zero simulations: every point is served from
/// the store, and the store says so in the report.
#[test]
fn warm_rerun_simulates_zero_points() {
    let dir = store_dir("warm");
    let store = ResultStore::open(&dir).unwrap();
    let sweep = grid(256);

    let cold = sweep.runner().threads(2).store(&store).run();
    assert_eq!(cold.store_hits, 0);
    assert_eq!(cold.store_misses, sweep.len() as u64);

    let warm = sweep.runner().threads(2).store(&store).run();
    assert_eq!(warm.store_hits, sweep.len() as u64);
    assert_eq!(warm.store_misses, 0);
    assert!(warm.points.iter().all(|p| p.from_store));
    assert_reports_identical(&cold, &warm, "warm vs cold");
    // The hit/miss accounting reaches the JSON artefact.
    let json = warm.to_json().to_string();
    assert!(json.contains(&format!(
        "\"store\":{{\"hits\":{},\"misses\":0}}",
        sweep.len()
    )));

    // Stored wall times seed the next run's scheduler: every recorded cost
    // is a positive nanosecond figure keyed by (workload, config).
    let costs = store.recorded_costs();
    assert_eq!(costs.len(), sweep.len());
    assert!(costs.values().all(|&ns| ns > 0));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Changing one workload invalidates only that workload's points: the
/// fingerprint of the others is unchanged, so they keep hitting.
#[test]
fn workload_change_invalidates_only_its_points() {
    let dir = store_dir("invalidate");
    let store = ResultStore::open(&dir).unwrap();
    let before = grid(256);
    let _ = before.runner().threads(2).store(&store).run();

    // Grow the axpy problem; somier is untouched. Points are workload-major
    // (axpy first), so the first two points must re-simulate and the somier
    // two must be served from the store.
    let after = grid(512);
    let report = after.runner().threads(2).store(&store).run();
    assert_eq!(report.store_hits, 2);
    assert_eq!(report.store_misses, 2);
    assert!(
        report.points[..2].iter().all(|p| !p.from_store),
        "axpy changed"
    );
    assert!(
        report.points[2..].iter().all(|p| p.from_store),
        "somier did not"
    );
    // And the fresh points agree with a store-free run of the new grid.
    let fresh = grid(512).runner().threads(1).run();
    assert_reports_identical(&fresh, &report, "after invalidation");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted or truncated entry — or a stray temp file from a writer that
/// died mid-checkpoint — is a miss, not a crash: the point is re-simulated
/// and the entry overwritten.
#[test]
fn damaged_entries_degrade_to_misses() {
    let dir = store_dir("damage");
    let store = ResultStore::open(&dir).unwrap();
    let sweep = grid(256);
    let cold = sweep.runner().threads(1).store(&store).run();

    // Damage two of the four entries in different ways and drop a stray
    // half-written temp file next to them.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 4);
    let full = std::fs::read_to_string(&entries[0]).unwrap();
    std::fs::write(&entries[0], &full[..full.len() / 2]).unwrap(); // truncated
    std::fs::write(&entries[1], "not json at all").unwrap(); // garbage
    std::fs::write(dir.join("axpy-0.json.tmp-9999-0"), "{\"half\":").unwrap();

    let rerun = sweep.runner().threads(2).store(&store).run();
    assert_eq!(rerun.store_hits, 2, "the two intact entries still serve");
    assert_eq!(rerun.store_misses, 2, "the damaged ones re-simulate");
    assert_reports_identical(&cold, &rerun, "after damage");

    // The re-simulation repaired the store: a further run is fully warm.
    let warm = sweep.runner().threads(1).store(&store).run();
    assert_eq!(warm.store_hits, 4);
    assert_reports_identical(&cold, &warm, "after repair");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Store-served points go through the JSON round-trip; attaching a store
/// must therefore not perturb a single counter relative to a plain sweep,
/// and profile-guided scheduling from the store's recorded wall times must
/// not either.
#[test]
fn store_round_trip_never_perturbs_results() {
    let dir = store_dir("identity");
    let store = ResultStore::open(&dir).unwrap();
    let sweep = grid(320);
    let plain = sweep.runner().threads(1).run();
    let stored_cold = sweep.runner().threads(3).store(&store).run();
    let stored_warm = sweep.runner().threads(3).store(&store).run();
    assert_reports_identical(&plain, &stored_cold, "cold store run");
    assert_reports_identical(&plain, &stored_warm, "warm store run");
    // Warm scheduling used the recorded costs; results stayed in grid order.
    for (p, r) in stored_warm.points.iter().zip(&stored_warm.reports) {
        assert_eq!(p.workload, r.workload);
        assert_eq!(p.config, r.config);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
