//! Property-based tests over the whole stack: randomly generated vector
//! kernels must produce identical results no matter which register-file
//! organisation executes them, the register allocator must always respect
//! its budget, and the cache hierarchy must never change functional values.

use proptest::prelude::*;

use ava::compiler::{compile, CompileOptions, KernelBuilder, VirtReg};
use ava::isa::Lmul;
use ava::memory::MemoryHierarchy;
use ava::sim::SystemConfig;
use ava::vpu::Vpu;

/// A tiny random straight-line kernel description: a sequence of operation
/// selectors over a pool of live values.
#[derive(Debug, Clone)]
struct RandomKernel {
    ops: Vec<u8>,
    vl: usize,
}

fn random_kernel_strategy() -> impl Strategy<Value = RandomKernel> {
    (prop::collection::vec(0u8..=5, 4..60), 1usize..=16).prop_map(|(ops, vl)| RandomKernel { ops, vl })
}

/// Materialises the random kernel: allocates an input array, builds the IR
/// with the kernel builder, and returns (kernel, output addresses).
fn build_kernel(mem: &mut MemoryHierarchy, spec: &RandomKernel) -> (ava::compiler::IrKernel, Vec<u64>) {
    let n = 64usize;
    let input = mem.allocate((n * 8) as u64);
    for i in 0..n {
        mem.write_f64(input + 8 * i as u64, (i as f64) * 0.25 - 3.0);
    }
    let out_base = mem.allocate((spec.ops.len() * spec.vl * 8) as u64);

    let mut b = KernelBuilder::new("random");
    b.set_vl(spec.vl);
    let mut live: Vec<VirtReg> = Vec::new();
    live.push(b.vload(input));
    live.push(b.vload(input + 128));
    let mut outputs = Vec::new();
    for (i, op) in spec.ops.iter().enumerate() {
        let a = live[i % live.len()];
        let c = live[(i * 7 + 3) % live.len()];
        let v = match op {
            0 => b.vfadd(a, c),
            1 => b.vfmul(a, c),
            2 => b.vfsub(a, c),
            3 => b.vfmadd(a, c, a),
            4 => b.vfmax(a, c),
            _ => b.vload(input + (8 * ((i * 16) % (n - spec.vl))) as u64),
        };
        live.push(v);
        if live.len() > 24 {
            live.remove(0);
        }
        if i % 3 == 0 {
            let addr = out_base + (8 * i * spec.vl) as u64;
            b.vstore(v, addr);
            outputs.push(addr);
        }
    }
    // Always store the final value so every kernel has observable output.
    let last = *live.last().expect("at least one live value");
    let addr = out_base + (8 * spec.ops.len() * spec.vl) as u64;
    b.vstore(last, addr);
    outputs.push(addr);
    (b.finish(), outputs)
}

/// Runs the kernel on a configuration and returns the values at the output
/// addresses.
fn run_on(spec: &RandomKernel, sys: &SystemConfig, lmul: Lmul) -> Vec<f64> {
    let mut mem = MemoryHierarchy::default();
    let (kernel, outputs) = build_kernel(&mut mem, spec);
    let spill_base = mem.allocate(64 * 1024);
    let compiled = compile(&kernel, &CompileOptions::new(lmul, spill_base, (sys.mvl() * 8) as u64));
    let mut vpu = Vpu::new(sys.vpu.clone(), &mut mem);
    let _ = vpu.run(&compiled.program, &mut mem);
    outputs
        .iter()
        .flat_map(|&addr| (0..spec.vl).map(move |i| addr + 8 * i as u64))
        .map(|a| mem.read_f64(a))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same program produces bit-identical results on the conventional
    /// long-vector design, on AVA with its tiny 8-register P-VRF (heavy swap
    /// traffic), and on the register-grouped baseline (heavy spill traffic).
    #[test]
    fn results_are_identical_across_organisations(spec in random_kernel_strategy()) {
        let reference = run_on(&spec, &SystemConfig::native_x(8), Lmul::M1);
        let ava = run_on(&spec, &SystemConfig::ava_x(8), Lmul::M1);
        let rg = run_on(&spec, &SystemConfig::rg_lmul(Lmul::M8), Lmul::M8);
        prop_assert_eq!(&reference, &ava, "AVA X8 diverged from NATIVE X8");
        prop_assert_eq!(&reference, &rg, "RG-LMUL8 diverged from NATIVE X8");
    }

    /// The register allocator never exceeds the architectural budget and
    /// never loses a value, for any grouping factor.
    #[test]
    fn register_allocation_respects_every_budget(spec in random_kernel_strategy()) {
        let mut mem = MemoryHierarchy::default();
        let (kernel, _) = build_kernel(&mut mem, &spec);
        for lmul in Lmul::all() {
            let compiled = compile(&kernel, &CompileOptions::new(lmul, 0x100_0000, 1024));
            prop_assert!(compiled.registers_used <= lmul.architectural_registers());
            for reg in compiled.program.used_registers() {
                prop_assert_eq!(reg.index() % lmul.factor(), 0, "register {} is not a group base", reg);
            }
            prop_assert!(compiled.spill_loads >= compiled.spill_stores);
        }
    }

    /// Cache warm-up and timing queries never alter functional memory.
    #[test]
    fn timing_accesses_never_corrupt_functional_state(
        values in prop::collection::vec(-1e6f64..1e6, 1..64),
        stride in 1u64..64,
    ) {
        let mut mem = MemoryHierarchy::default();
        let base = mem.allocate((values.len() * 8) as u64);
        for (i, v) in values.iter().enumerate() {
            mem.write_f64(base + 8 * i as u64, *v);
        }
        // Timing-side activity.
        mem.warm_caches();
        let _ = mem.vector_access(base, (values.len() * 8) as u64, false);
        let addrs: Vec<u64> = (0..values.len() as u64).map(|i| base + i * 8 * stride % 4096).collect();
        let _ = mem.vector_access_elements(&addrs, true);
        let _ = mem.scalar_access(base, true);
        mem.flush_caches();
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(mem.read_f64(base + 8 * i as u64), *v);
        }
    }

    /// The VPU never deadlocks and always reports monotonically consistent
    /// statistics for arbitrary kernels on the smallest register file.
    #[test]
    fn tiny_register_files_never_deadlock(spec in random_kernel_strategy()) {
        let sys = SystemConfig::ava_x(8);
        let mut mem = MemoryHierarchy::default();
        let (kernel, _) = build_kernel(&mut mem, &spec);
        let spill_base = mem.allocate(64 * 1024);
        let compiled = compile(&kernel, &CompileOptions::new(Lmul::M1, spill_base, 1024));
        let mut vpu = Vpu::new(sys.vpu.clone(), &mut mem);
        let result = vpu.run(&compiled.program, &mut mem);
        prop_assert!(result.cycles > 0);
        // Everything the program contains (minus vsetvl) must have been
        // issued, plus whatever swap traffic the hardware added.
        let program_issue = compiled.program.len() as u64 - result.stats.config_instrs;
        prop_assert!(result.stats.issued_instrs() >= program_issue);
        prop_assert_eq!(result.stats.issued_instrs() - result.stats.swap_ops(), program_issue);
    }
}
