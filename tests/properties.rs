//! Property-based tests over the whole stack: randomly generated vector
//! kernels must produce identical results no matter which register-file
//! organisation executes them, the register allocator must always respect
//! its budget, and the cache hierarchy must never change functional values.
//!
//! The container has no access to crates.io, so instead of proptest these
//! tests drive a deterministic SplitMix64 case generator: every run explores
//! the same cases, and a failing case is reproducible from its index alone.

use ava::compiler::{compile, CompileOptions, KernelBuilder, VirtReg};
use ava::isa::Lmul;
use ava::memory::MemoryHierarchy;
use ava::sim::ScenarioConfig;
use ava::vpu::Vpu;
use ava::workloads::data::DataGen;

const CASES: u64 = 24;

/// The deterministic stream for one case index (the workloads' SplitMix64
/// generator, seeded so every case explores a distinct sequence).
fn case_rng(case: u64) -> DataGen {
    DataGen::from_seed(0xDEAD_BEEF_CAFE_F00D ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A value in `[lo, hi]`.
fn in_range(rng: &mut DataGen, lo: u64, hi: u64) -> u64 {
    lo + rng.next_u64() % (hi - lo + 1)
}

/// A tiny random straight-line kernel description: a sequence of operation
/// selectors over a pool of live values.
#[derive(Debug, Clone)]
struct RandomKernel {
    ops: Vec<u8>,
    vl: usize,
}

fn random_kernel(case: u64) -> RandomKernel {
    let mut rng = case_rng(case);
    let len = in_range(&mut rng, 4, 59) as usize;
    let ops = (0..len).map(|_| in_range(&mut rng, 0, 5) as u8).collect();
    let vl = in_range(&mut rng, 1, 16) as usize;
    RandomKernel { ops, vl }
}

/// Materialises the random kernel: allocates an input array, builds the IR
/// with the kernel builder, and returns (kernel, output addresses).
fn build_kernel(
    mem: &mut MemoryHierarchy,
    spec: &RandomKernel,
) -> (ava::compiler::IrKernel, Vec<u64>) {
    let n = 64usize;
    let input = mem.allocate((n * 8) as u64);
    for i in 0..n {
        mem.write_f64(input + 8 * i as u64, (i as f64) * 0.25 - 3.0);
    }
    let out_base = mem.allocate((spec.ops.len() * spec.vl * 8) as u64);

    let mut b = KernelBuilder::new("random");
    b.set_vl(spec.vl);
    let mut live: Vec<VirtReg> = Vec::new();
    live.push(b.vload(input));
    live.push(b.vload(input + 128));
    let mut outputs = Vec::new();
    for (i, op) in spec.ops.iter().enumerate() {
        let a = live[i % live.len()];
        let c = live[(i * 7 + 3) % live.len()];
        let v = match op {
            0 => b.vfadd(a, c),
            1 => b.vfmul(a, c),
            2 => b.vfsub(a, c),
            3 => b.vfmadd(a, c, a),
            4 => b.vfmax(a, c),
            _ => b.vload(input + (8 * ((i * 16) % (n - spec.vl))) as u64),
        };
        live.push(v);
        if live.len() > 24 {
            live.remove(0);
        }
        if i % 3 == 0 {
            let addr = out_base + (8 * i * spec.vl) as u64;
            b.vstore(v, addr);
            outputs.push(addr);
        }
    }
    // Always store the final value so every kernel has observable output.
    let last = *live.last().expect("at least one live value");
    let addr = out_base + (8 * spec.ops.len() * spec.vl) as u64;
    b.vstore(last, addr);
    outputs.push(addr);
    (b.finish(), outputs)
}

/// Runs the kernel on a configuration and returns the values at the output
/// addresses.
fn run_on(spec: &RandomKernel, scenario: &ScenarioConfig, lmul: Lmul) -> Vec<f64> {
    let sys = scenario.resolve();
    let mut mem = MemoryHierarchy::default();
    let (kernel, outputs) = build_kernel(&mut mem, spec);
    let spill_base = mem.allocate(64 * 1024);
    let compiled = compile(
        &kernel,
        &CompileOptions::new(lmul, spill_base, (sys.mvl() * 8) as u64),
    );
    let mut vpu = Vpu::new(sys.vpu.clone(), &mut mem);
    let _ = vpu.run(&compiled.program, &mut mem);
    outputs
        .iter()
        .flat_map(|&addr| (0..spec.vl).map(move |i| addr + 8 * i as u64))
        .map(|a| mem.read_f64(a))
        .collect()
}

/// The same program produces bit-identical results on the conventional
/// long-vector design, on AVA with its tiny 8-register P-VRF (heavy swap
/// traffic), and on the register-grouped baseline (heavy spill traffic).
#[test]
fn results_are_identical_across_organisations() {
    for case in 0..CASES {
        let spec = random_kernel(case);
        let reference = run_on(&spec, &ScenarioConfig::native_x(8), Lmul::M1);
        let ava = run_on(&spec, &ScenarioConfig::ava_x(8), Lmul::M1);
        let rg = run_on(&spec, &ScenarioConfig::rg_lmul(Lmul::M8), Lmul::M8);
        assert_eq!(
            reference, ava,
            "case {case}: AVA X8 diverged from NATIVE X8"
        );
        assert_eq!(
            reference, rg,
            "case {case}: RG-LMUL8 diverged from NATIVE X8"
        );
    }
}

/// The register allocator never exceeds the architectural budget and
/// never loses a value, for any grouping factor.
#[test]
fn register_allocation_respects_every_budget() {
    for case in 0..CASES {
        let spec = random_kernel(case);
        let mut mem = MemoryHierarchy::default();
        let (kernel, _) = build_kernel(&mut mem, &spec);
        for lmul in Lmul::all() {
            let compiled = compile(&kernel, &CompileOptions::new(lmul, 0x100_0000, 1024));
            assert!(
                compiled.registers_used <= lmul.architectural_registers(),
                "case {case}"
            );
            for reg in compiled.program.used_registers() {
                assert_eq!(
                    reg.index() % lmul.factor(),
                    0,
                    "case {case}: register {reg} is not a group base"
                );
            }
            assert!(compiled.spill_loads >= compiled.spill_stores, "case {case}");
        }
    }
}

/// Cache warm-up and timing queries never alter functional memory.
#[test]
fn timing_accesses_never_corrupt_functional_state() {
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let n = in_range(&mut rng, 1, 63) as usize;
        let values: Vec<f64> = (0..n).map(|_| rng.uniform(-1e6, 1e6)).collect();
        let stride = in_range(&mut rng, 1, 63);

        let mut mem = MemoryHierarchy::default();
        let base = mem.allocate((values.len() * 8) as u64);
        for (i, v) in values.iter().enumerate() {
            mem.write_f64(base + 8 * i as u64, *v);
        }
        // Timing-side activity.
        mem.warm_caches();
        let _ = mem.vector_access(base, (values.len() * 8) as u64, false);
        let addrs: Vec<u64> = (0..values.len() as u64)
            .map(|i| base + i * 8 * stride % 4096)
            .collect();
        let _ = mem.vector_access_elements(&addrs, true);
        let _ = mem.scalar_access(base, true);
        mem.flush_caches();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(
                mem.read_f64(base + 8 * i as u64),
                *v,
                "case {case}, value {i}"
            );
        }
    }
}

/// The VPU never deadlocks and always reports monotonically consistent
/// statistics for arbitrary kernels on the smallest register file.
#[test]
fn tiny_register_files_never_deadlock() {
    for case in 0..CASES {
        let spec = random_kernel(case);
        let sys = ScenarioConfig::ava_x(8);
        let mut mem = MemoryHierarchy::default();
        let (kernel, _) = build_kernel(&mut mem, &spec);
        let spill_base = mem.allocate(64 * 1024);
        let compiled = compile(&kernel, &CompileOptions::new(Lmul::M1, spill_base, 1024));
        let mut vpu = Vpu::new(sys.vpu_config(), &mut mem);
        let result = vpu.run(&compiled.program, &mut mem);
        assert!(result.cycles > 0, "case {case}");
        // Everything the program contains (minus vsetvl) must have been
        // issued, plus whatever swap traffic the hardware added.
        let program_issue = compiled.program.len() as u64 - result.stats.config_instrs;
        assert!(result.stats.issued_instrs() >= program_issue, "case {case}");
        assert_eq!(
            result.stats.issued_instrs() - result.stats.swap_ops(),
            program_issue,
            "case {case}"
        );
    }
}

/// Table I and its extrapolation: at a fixed P-VRF capacity the physical
/// register count is monotonically non-increasing in the MVL, and the
/// resolved AVA MVL axis never drops below the X8 register floor.
#[test]
fn preg_count_is_monotonic_and_the_mvl_axis_holds_the_floor() {
    use ava::sim::{ScenarioConfig, AVA_EXTRAPOLATION_PREG_FLOOR};
    use ava::vpu::preg_count_for_mvl;

    for pvrf in [8 * 1024usize, 16 * 1024, 64 * 1024] {
        let mut prev = usize::MAX;
        for mvl in (16..=512).step_by(16) {
            let pregs = preg_count_for_mvl(pvrf, mvl);
            assert!(
                pregs <= prev,
                "pvrf={pvrf}: preg count rose from {prev} to {pregs} at MVL={mvl}"
            );
            prev = pregs;
        }
    }
    // The resolved extrapolation axis: Table I exact up to 128, the X8
    // floor (with a minimally grown P-VRF) beyond it.
    for scenario in ScenarioConfig::axis_mvl(&[16, 64, 128, 192, 256, 384, 512]) {
        let vpu = scenario.vpu_config();
        assert!(
            vpu.physical_regs() >= AVA_EXTRAPOLATION_PREG_FLOOR,
            "{}: only {} physical registers",
            scenario.label(),
            vpu.physical_regs()
        );
        assert_eq!(
            vpu.physical_regs(),
            preg_count_for_mvl(vpu.pvrf_bytes, vpu.mvl),
            "{}: the Table I sizing function must stay the single source",
            scenario.label()
        );
        if vpu.mvl <= 128 {
            assert_eq!(vpu.pvrf_bytes, 8 * 1024, "{}", scenario.label());
        }
    }
}
