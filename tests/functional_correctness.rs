//! Cross-crate integration tests: every workload must produce numerically
//! correct results on every register-file organisation, including the
//! configurations that exercise compiler spill code and the AVA swap
//! mechanism heavily.

use ava::isa::Lmul;
use ava::sim::{run_workload, RunReport, ScenarioConfig};
use ava::workloads::{
    all_workloads, Axpy, Blackscholes, LavaMd2, ParticleFilter, Somier, Swaptions,
};

fn assert_valid(report: &RunReport) {
    assert!(
        report.validated,
        "{} on {} failed validation: {:?}",
        report.workload, report.config, report.validation_error
    );
    assert!(report.cycles > 0);
}

#[test]
fn every_workload_validates_on_the_baseline() {
    for w in all_workloads() {
        let r = run_workload(w.as_ref(), &ScenarioConfig::native_x(1));
        assert_valid(&r);
    }
}

#[test]
fn every_workload_validates_on_every_native_configuration() {
    for w in all_workloads() {
        for sys in ScenarioConfig::all_native() {
            let r = run_workload(w.as_ref(), &sys);
            assert_valid(&r);
        }
    }
}

#[test]
fn every_workload_validates_on_every_ava_configuration() {
    for w in all_workloads() {
        for sys in ScenarioConfig::all_ava() {
            let r = run_workload(w.as_ref(), &sys);
            assert_valid(&r);
        }
    }
}

#[test]
fn every_workload_validates_on_every_rg_configuration() {
    for w in all_workloads() {
        for sys in ScenarioConfig::all_rg() {
            let r = run_workload(w.as_ref(), &sys);
            assert_valid(&r);
        }
    }
}

#[test]
fn results_are_identical_across_organisations_for_elementwise_kernels() {
    // Axpy and Somier perform no cross-strip reductions, so every
    // configuration must produce bit-identical outputs; the checks are exact
    // (tolerance 0.0 / 1e-12), so validation across all 14 configurations is
    // the equivalence proof.
    for sys in ScenarioConfig::all_evaluated() {
        assert_valid(&run_workload(&Axpy::new(500), &sys));
        assert_valid(&run_workload(&Somier::new(500), &sys));
    }
}

#[test]
fn swap_heavy_runs_stay_correct() {
    // AVA X8 leaves only 8 physical registers; the high-pressure kernels
    // must still validate while generating swap traffic.
    for (report, expect_swaps) in [
        (
            run_workload(&Blackscholes::new(256), &ScenarioConfig::ava_x(8)),
            true,
        ),
        (
            run_workload(&Swaptions::new(256), &ScenarioConfig::ava_x(8)),
            true,
        ),
        (
            run_workload(&Axpy::new(256), &ScenarioConfig::ava_x(8)),
            false,
        ),
    ] {
        assert_valid(&report);
        assert_eq!(
            report.vpu.swap_ops() > 0,
            expect_swaps,
            "{}",
            report.workload
        );
    }
}

#[test]
fn spill_heavy_runs_stay_correct() {
    for (report, expect_spills) in [
        (
            run_workload(&Blackscholes::new(256), &ScenarioConfig::rg_lmul(Lmul::M8)),
            true,
        ),
        (
            run_workload(&LavaMd2::new(8, 2), &ScenarioConfig::rg_lmul(Lmul::M8)),
            true,
        ),
        (
            run_workload(
                &ParticleFilter::new(256, 32),
                &ScenarioConfig::rg_lmul(Lmul::M2),
            ),
            false,
        ),
    ] {
        assert_valid(&report);
        assert_eq!(
            report.vpu.spill_ops() > 0,
            expect_spills,
            "{} on {}",
            report.workload,
            report.config
        );
    }
}

#[test]
fn executed_spills_match_what_the_compiler_emitted() {
    for w in all_workloads() {
        for sys in [
            ScenarioConfig::rg_lmul(Lmul::M4),
            ScenarioConfig::rg_lmul(Lmul::M8),
        ] {
            let r = run_workload(w.as_ref(), &sys);
            assert_eq!(
                r.vpu.spill_loads as usize + r.vpu.spill_stores as usize,
                r.compiler_spill_loads + r.compiler_spill_stores,
                "{} on {}",
                r.workload,
                r.config
            );
        }
    }
}

#[test]
fn native_and_rg_never_generate_swaps_and_ava_never_needs_spills() {
    for w in all_workloads() {
        let native = run_workload(w.as_ref(), &ScenarioConfig::native_x(4));
        assert_eq!(native.vpu.swap_ops(), 0, "{}", w.name());
        let rg = run_workload(w.as_ref(), &ScenarioConfig::rg_lmul(Lmul::M4));
        assert_eq!(rg.vpu.swap_ops(), 0, "{}", w.name());
        let ava = run_workload(w.as_ref(), &ScenarioConfig::ava_x(4));
        assert_eq!(
            ava.vpu.spill_ops(),
            0,
            "{} (AVA keeps 32 architectural registers)",
            w.name()
        );
        assert_eq!(ava.compiler_spill_stores, 0);
    }
}
