//! The JSON report pipeline's guarantee: what the std-only emitter writes is
//! real JSON. A tiny hand-written recursive-descent parser (independent of
//! the emitter — it shares no code with `ava::sim::json`) parses the
//! emitted documents back and the tests compare the round-tripped values
//! against the Rust originals, including the full `SweepReport` that the
//! `--json` flag of every binary persists for CI.

use std::collections::BTreeMap;
use std::sync::Arc;

use ava::sim::json::{object, Json};
use ava::sim::{run_workload, ScenarioConfig, Sweep};
use ava::workloads::{composite, Axpy, Blackscholes, Composite, SharedWorkload, Somier};

/// A parsed JSON value. Numbers keep their integer form when the text had
/// no fraction/exponent, so `u64` counters round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn get(&self, key: &str) -> &Value {
        match self {
            Value::Obj(m) => m.get(key).unwrap_or_else(|| panic!("missing key {key}")),
            other => panic!("expected object for key {key}, got {other:?}"),
        }
    }

    fn as_u64(&self) -> u64 {
        match self {
            Value::Int(i) => u64::try_from(*i).expect("negative counter"),
            other => panic!("expected integer, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn as_arr(&self) -> &[Value] {
        match self {
            Value::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }
}

/// The tiny parser: bytes + cursor, recursive descent, panics on malformed
/// input (fine for a test oracle).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Value {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value();
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after document");
    v
}

impl Parser<'_> {
    fn peek(&self) -> u8 {
        self.bytes[self.pos]
    }

    fn bump(&mut self) -> u8 {
        let b = self.bytes[self.pos];
        self.pos += 1;
        b
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        self.skip_ws();
        assert_eq!(self.bump(), b, "at byte {}", self.pos - 1);
    }

    fn literal(&mut self, text: &str, value: Value) -> Value {
        assert_eq!(
            &self.bytes[self.pos..self.pos + text.len()],
            text.as_bytes()
        );
        self.pos += text.len();
        value
    }

    fn value(&mut self) -> Value {
        self.skip_ws();
        match self.peek() {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Value::Str(self.string()),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bump() {
                b'"' => return out,
                b'\\' => match self.bump() {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'u' => {
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .expect("hex escape");
                        self.pos += 4;
                        let code = u32::from_str_radix(hex, 16).expect("hex escape");
                        out.push(char::from_u32(code).expect("BMP scalar"));
                    }
                    other => panic!("bad escape \\{}", other as char),
                },
                // Multi-byte UTF-8: copy the whole sequence through.
                b if b < 0x80 => out.push(b as char),
                b => {
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    self.pos = start + len;
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Value {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.peek(), b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.contains(['.', 'e', 'E']) {
            Value::Float(text.parse().expect("float"))
        } else {
            Value::Int(text.parse().expect("int"))
        }
    }

    fn array(&mut self) -> Value {
        self.expect(b'[');
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == b']' {
            self.pos += 1;
            return Value::Arr(items);
        }
        loop {
            items.push(self.value());
            self.skip_ws();
            match self.bump() {
                b',' => {}
                b']' => return Value::Arr(items),
                other => panic!("bad array separator {}", other as char),
            }
        }
    }

    fn object(&mut self) -> Value {
        self.expect(b'{');
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.pos += 1;
            return Value::Obj(map);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.expect(b':');
            map.insert(key, self.value());
            self.skip_ws();
            match self.bump() {
                b',' => {}
                b'}' => return Value::Obj(map),
                other => panic!("bad object separator {}", other as char),
            }
        }
    }
}

#[test]
fn escaping_round_trips_hostile_strings() {
    let hostile = [
        "plain",
        "with \"quotes\" inside",
        "back\\slash and \\\" both",
        "newline\nand\ttab\rand\u{0008}\u{000C}",
        "low controls \u{0000}\u{0001}\u{001f} end",
        "unicode µ→☃ stays literal",
        "",
    ];
    for s in hostile {
        let emitted = Json::from(s).to_string();
        assert_eq!(
            parse(&emitted),
            Value::Str(s.to_string()),
            "round-trip failed for {s:?} (emitted {emitted})"
        );
    }
}

#[test]
fn numbers_round_trip_including_2_53_plus_one() {
    let n = (1_u64 << 53) + 1;
    assert_eq!(parse(&Json::from(n).to_string()), Value::Int(i128::from(n)));
    assert_eq!(parse(&Json::from(-5_i64).to_string()), Value::Int(-5));
    assert_eq!(parse(&Json::from(0.25).to_string()), Value::Float(0.25));
    assert_eq!(parse(&Json::from(f64::NAN).to_string()), Value::Null);
}

#[test]
fn nested_builders_round_trip() {
    let doc = object()
        .field("s", "a\"b")
        .field("n", 7_u64)
        .field("none", Json::Null)
        .field("list", Json::from_iter([1_u64, 2, 3]))
        .field("inner", object().field("ok", true).finish())
        .finish();
    let v = parse(&doc.to_string());
    assert_eq!(v.get("s"), &Value::Str("a\"b".to_string()));
    assert_eq!(v.get("n"), &Value::Int(7));
    assert_eq!(v.get("none"), &Value::Null);
    assert_eq!(
        v.get("list"),
        &Value::Arr(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
    );
    assert_eq!(v.get("inner").get("ok"), &Value::Bool(true));
}

#[test]
fn full_sweep_report_round_trips_against_the_parser() {
    let workloads: Vec<SharedWorkload> =
        vec![Arc::new(Axpy::new(256)), Arc::new(Blackscholes::new(64))];
    let systems = vec![ScenarioConfig::native_x(1), ScenarioConfig::ava_x(8)];
    let sweep = Sweep::grid(workloads, systems);
    let report = sweep.run_parallel_report_with(2);

    let parsed = parse(&report.to_json().to_string());

    assert_eq!(parsed.get("schema").as_str(), "ava-sweep-report/v1");
    assert_eq!(parsed.get("threads").as_u64(), 2);
    assert_eq!(parsed.get("wall_ns").as_u64(), report.wall_ns);
    assert_eq!(parsed.get("busy_ns").as_u64(), report.busy_ns());
    assert_eq!(parsed.get("cache").get("hits").as_u64(), report.cache_hits);
    assert_eq!(
        parsed.get("cache").get("misses").as_u64(),
        report.cache_misses
    );

    let points = parsed.get("points").as_arr();
    assert_eq!(points.len(), report.reports.len());
    for ((point, stats), run) in points.iter().zip(&report.points).zip(&report.reports) {
        assert_eq!(point.get("workload").as_str(), stats.workload);
        assert_eq!(point.get("config").as_str(), stats.config);
        assert_eq!(point.get("cost_estimate").as_u64(), stats.cost_estimate);
        assert_eq!(point.get("wall_ns").as_u64(), stats.wall_ns);
        assert_eq!(point.get("worker").as_u64(), stats.worker as u64);

        // The embedded RunReport: every headline counter survives exactly.
        let r = point.get("report");
        assert_eq!(r.get("config").as_str(), run.config);
        assert_eq!(r.get("workload").as_str(), run.workload);
        assert_eq!(r.get("cycles").as_u64(), run.cycles);
        assert_eq!(r.get("vpu_cycles").as_u64(), run.vpu_cycles);
        assert_eq!(r.get("validated"), &Value::Bool(run.validated));
        assert_eq!(r.get("validation_error"), &Value::Null);
        assert_eq!(r.get("vpu").get("vloads").as_u64(), run.vpu.vloads);
        assert_eq!(r.get("vpu").get("swap_loads").as_u64(), run.vpu.swap_loads);
        assert_eq!(
            r.get("vpu").get("memory_instrs").as_u64(),
            run.vpu.memory_instrs()
        );
        assert_eq!(
            r.get("mem").get("l2").get("read_misses").as_u64(),
            run.mem.l2.read_misses
        );
        assert_eq!(r.get("mem").get("dram_bytes").as_u64(), run.mem.dram_bytes);
        assert_eq!(
            r.get("scalar").get("instructions").as_u64(),
            run.scalar.instructions
        );
    }
}

#[test]
fn per_phase_breakdowns_round_trip_through_the_json_pipeline() {
    let pipe = Composite::pipelined(
        vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))],
        vec![composite::links(&[("y", "v")])],
    );
    let run = run_workload(&pipe, &ScenarioConfig::ava_x(2));
    assert!(run.validated, "{:?}", run.validation_error);
    let parsed = parse(&run.to_json().to_string());

    let phases = parsed.get("phases").as_arr();
    assert_eq!(phases.len(), 2);
    assert_eq!(phases[0].get("name").as_str(), "0:axpy");
    assert_eq!(phases[1].get("name").as_str(), "1:somier");
    // The emitted per-phase counters partition the run totals exactly.
    assert_eq!(
        phases
            .iter()
            .map(|p| p.get("vpu_cycles").as_u64())
            .sum::<u64>(),
        run.vpu_cycles
    );
    assert_eq!(
        phases
            .iter()
            .map(|p| p.get("vpu").get("vloads").as_u64())
            .sum::<u64>(),
        run.vpu.vloads
    );
    assert_eq!(
        phases
            .iter()
            .map(|p| p.get("mem").get("vmu_bytes").as_u64())
            .sum::<u64>(),
        run.mem.vmu_bytes
    );
    // Single-kernel reports stay lean: no phases key at all.
    let single = run_workload(&Axpy::new(128), &ScenarioConfig::native_x(1));
    assert!(!single.to_json().to_string().contains("\"phases\""));
}

#[test]
fn per_iteration_breakdowns_round_trip_with_iter_and_phase_labels() {
    let solver = Composite::iterated(
        Arc::new(Somier::relaxation(256)),
        4,
        composite::links(&[("xout", "x"), ("vout", "v")]),
    );
    let run = run_workload(&solver, &ScenarioConfig::ava_x(2));
    assert!(run.validated, "{:?}", run.validation_error);
    let parsed = parse(&run.to_json().to_string());

    let phases = parsed.get("phases").as_arr();
    assert_eq!(phases.len(), 4);
    for (k, phase) in phases.iter().enumerate() {
        // Iteration grouping: the unrolled iteration index plus the bare
        // body label, alongside the display name.
        assert_eq!(phase.get("name").as_str(), format!("it{k}:somier"));
        assert_eq!(phase.get("iter").as_u64(), k as u64);
        assert_eq!(phase.get("phase").as_str(), "somier");
    }
    // The per-iteration counters partition the run totals exactly.
    assert_eq!(
        phases
            .iter()
            .map(|p| p.get("vpu_cycles").as_u64())
            .sum::<u64>(),
        run.vpu_cycles
    );
    assert_eq!(
        phases
            .iter()
            .map(|p| p.get("vpu").get("vloads").as_u64())
            .sum::<u64>(),
        run.vpu.vloads
    );
    assert_eq!(
        phases
            .iter()
            .map(|p| p.get("mem").get("vmu_bytes").as_u64())
            .sum::<u64>(),
        run.mem.vmu_bytes
    );
    // Pipeline stages stay unlabelled: no iter key outside iterated mixes.
    let pipe = Composite::pipelined(
        vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))],
        vec![composite::links(&[("y", "v")])],
    );
    let piped = run_workload(&pipe, &ScenarioConfig::ava_x(2));
    assert!(!piped.to_json().to_string().contains("\"iter\""));
}

#[test]
fn scenario_axis_metadata_round_trips_through_the_json_pipeline() {
    let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256))];
    let scenarios = ScenarioConfig::axis_l2_kib(&ScenarioConfig::axis_mvl(&[128, 256]), &[512]);
    let report = Sweep::grid(workloads, scenarios).run_serial_report();
    let parsed = parse(&report.to_json().to_string());

    // The sweep-level axis summary lists every axis in play.
    assert_eq!(
        parsed.get("axes"),
        &Value::Arr(vec![
            Value::Str("mvl".to_string()),
            Value::Str("l2_kib".to_string())
        ])
    );
    // Each embedded report carries its own axis values.
    let points = parsed.get("points").as_arr();
    assert_eq!(points.len(), 2);
    let first = points[0].get("report");
    assert_eq!(first.get("config").as_str(), "AVA MVL=128 l2=512KiB");
    assert_eq!(first.get("axes").get("mvl").as_u64(), 128);
    assert_eq!(first.get("axes").get("l2_kib").as_u64(), 512);
    let second = points[1].get("report");
    assert_eq!(second.get("axes").get("mvl").as_u64(), 256);
}
