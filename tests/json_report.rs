//! The JSON report pipeline's guarantee: what the std-only emitter writes is
//! real JSON. The recursive-descent parser that used to live in this file
//! was promoted into the library as `ava::sim::json::parse` (so the `lint`
//! binary can self-verify its `--json` output); these tests now drive the
//! emitter's documents back through that parser and compare the
//! round-tripped values against the Rust originals, including the full
//! `SweepReport` that the `--json` flag of every binary persists for CI.

use std::sync::Arc;

use ava::sim::json::{object, parse, Json};
use ava::sim::{run_workload, ScenarioConfig, Sweep};
use ava::workloads::{composite, Axpy, Blackscholes, Composite, SharedWorkload, Somier};

/// Panicking accessors over the library [`Json`] — the `Option`-returning
/// library methods make every assertion line noisy, and a missing key
/// should name itself when a schema regression trips the oracle.
trait Expect {
    fn at(&self, key: &str) -> &Json;
    fn text(&self) -> &str;
    fn uint(&self) -> u64;
    fn items(&self) -> &[Json];
}

impl Expect for Json {
    fn at(&self, key: &str) -> &Json {
        self.get(key)
            .unwrap_or_else(|| panic!("missing key {key} in {self}"))
    }

    fn text(&self) -> &str {
        self.as_str()
            .unwrap_or_else(|| panic!("expected string, got {self}"))
    }

    fn uint(&self) -> u64 {
        self.as_u64()
            .unwrap_or_else(|| panic!("expected integer, got {self}"))
    }

    fn items(&self) -> &[Json] {
        self.as_arr()
            .unwrap_or_else(|| panic!("expected array, got {self}"))
    }
}

#[test]
fn escaping_round_trips_hostile_strings() {
    let hostile = [
        "plain",
        "with \"quotes\" inside",
        "back\\slash and \\\" both",
        "newline\nand\ttab\rand\u{0008}\u{000C}",
        "low controls \u{0000}\u{0001}\u{001f} end",
        "unicode µ→☃ stays literal",
        "",
    ];
    for s in hostile {
        let emitted = Json::from(s).to_string();
        assert_eq!(
            parse(&emitted),
            Ok(Json::Str(s.to_string())),
            "round-trip failed for {s:?} (emitted {emitted})"
        );
    }
}

#[test]
fn numbers_round_trip_including_2_53_plus_one() {
    let n = (1_u64 << 53) + 1;
    assert_eq!(parse(&Json::from(n).to_string()), Ok(Json::U64(n)));
    assert_eq!(parse(&Json::from(-5_i64).to_string()), Ok(Json::I64(-5)));
    assert_eq!(parse(&Json::from(0.25).to_string()), Ok(Json::F64(0.25)));
    assert_eq!(parse(&Json::from(f64::NAN).to_string()), Ok(Json::Null));
}

#[test]
fn nested_builders_round_trip() {
    let doc = object()
        .field("s", "a\"b")
        .field("n", 7_u64)
        .field("none", Json::Null)
        .field("list", Json::from_iter([1_u64, 2, 3]))
        .field("inner", object().field("ok", true).finish())
        .finish();
    let v = parse(&doc.to_string()).unwrap();
    assert_eq!(v.at("s").text(), "a\"b");
    assert_eq!(v.at("n").uint(), 7);
    assert!(v.at("none").is_null());
    assert_eq!(
        v.at("list"),
        &Json::Arr(vec![Json::U64(1), Json::U64(2), Json::U64(3)])
    );
    assert_eq!(v.at("inner").at("ok").as_bool(), Some(true));
    // Objects preserve key order on both sides, so the round trip is exact.
    assert_eq!(v, doc);
}

#[test]
fn full_sweep_report_round_trips_against_the_parser() {
    let workloads: Vec<SharedWorkload> =
        vec![Arc::new(Axpy::new(256)), Arc::new(Blackscholes::new(64))];
    let systems = vec![ScenarioConfig::native_x(1), ScenarioConfig::ava_x(8)];
    let sweep = Sweep::grid(workloads, systems);
    let report = sweep.runner().threads(2).run();

    let parsed = parse(&report.to_json().to_string()).unwrap();

    assert_eq!(parsed.at("schema").text(), "ava-sweep-report/v1");
    assert_eq!(parsed.at("threads").uint(), 2);
    assert_eq!(parsed.at("wall_ns").uint(), report.wall_ns);
    assert_eq!(parsed.at("busy_ns").uint(), report.busy_ns());
    assert_eq!(parsed.at("cache").at("hits").uint(), report.cache_hits);
    assert_eq!(parsed.at("cache").at("misses").uint(), report.cache_misses);

    let points = parsed.at("points").items();
    assert_eq!(points.len(), report.reports.len());
    for ((point, stats), run) in points.iter().zip(&report.points).zip(&report.reports) {
        assert_eq!(point.at("workload").text(), stats.workload);
        assert_eq!(point.at("config").text(), stats.config);
        assert_eq!(point.at("cost_estimate").uint(), stats.cost_estimate);
        assert_eq!(point.at("wall_ns").uint(), stats.wall_ns);
        assert_eq!(point.at("worker").uint(), stats.worker as u64);

        // The embedded RunReport: every headline counter survives exactly.
        let r = point.at("report");
        assert_eq!(r.at("config").text(), run.config);
        assert_eq!(r.at("workload").text(), run.workload);
        assert_eq!(r.at("cycles").uint(), run.cycles);
        assert_eq!(r.at("vpu_cycles").uint(), run.vpu_cycles);
        assert_eq!(r.at("validated"), &Json::Bool(run.validated));
        assert!(r.at("validation_error").is_null());
        assert_eq!(r.at("vpu").at("vloads").uint(), run.vpu.vloads);
        assert_eq!(r.at("vpu").at("swap_loads").uint(), run.vpu.swap_loads);
        assert_eq!(
            r.at("vpu").at("memory_instrs").uint(),
            run.vpu.memory_instrs()
        );
        assert_eq!(
            r.at("mem").at("l2").at("read_misses").uint(),
            run.mem.l2.read_misses
        );
        assert_eq!(r.at("mem").at("dram_bytes").uint(), run.mem.dram_bytes);
        assert_eq!(
            r.at("scalar").at("instructions").uint(),
            run.scalar.instructions
        );
    }
}

#[test]
fn per_phase_breakdowns_round_trip_through_the_json_pipeline() {
    let pipe = Composite::pipelined(
        vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))],
        vec![composite::links(&[("y", "v")])],
    );
    let run = run_workload(&pipe, &ScenarioConfig::ava_x(2));
    assert!(run.validated, "{:?}", run.validation_error);
    let parsed = parse(&run.to_json().to_string()).unwrap();

    let phases = parsed.at("phases").items();
    assert_eq!(phases.len(), 2);
    assert_eq!(phases[0].at("name").text(), "0:axpy");
    assert_eq!(phases[1].at("name").text(), "1:somier");
    // The emitted per-phase counters partition the run totals exactly.
    assert_eq!(
        phases
            .iter()
            .map(|p| p.at("vpu_cycles").uint())
            .sum::<u64>(),
        run.vpu_cycles
    );
    assert_eq!(
        phases
            .iter()
            .map(|p| p.at("vpu").at("vloads").uint())
            .sum::<u64>(),
        run.vpu.vloads
    );
    assert_eq!(
        phases
            .iter()
            .map(|p| p.at("mem").at("vmu_bytes").uint())
            .sum::<u64>(),
        run.mem.vmu_bytes
    );
    // Single-kernel reports stay lean: no phases key at all.
    let single = run_workload(&Axpy::new(128), &ScenarioConfig::native_x(1));
    assert!(!single.to_json().to_string().contains("\"phases\""));
}

#[test]
fn per_iteration_breakdowns_round_trip_with_iter_and_phase_labels() {
    let solver = Composite::iterated(
        Arc::new(Somier::relaxation(256)),
        4,
        composite::links(&[("xout", "x"), ("vout", "v")]),
    );
    let run = run_workload(&solver, &ScenarioConfig::ava_x(2));
    assert!(run.validated, "{:?}", run.validation_error);
    let parsed = parse(&run.to_json().to_string()).unwrap();

    let phases = parsed.at("phases").items();
    assert_eq!(phases.len(), 4);
    for (k, phase) in phases.iter().enumerate() {
        // Iteration grouping: the unrolled iteration index plus the bare
        // body label, alongside the display name.
        assert_eq!(phase.at("name").text(), format!("it{k}:somier"));
        assert_eq!(phase.at("iter").uint(), k as u64);
        assert_eq!(phase.at("phase").text(), "somier");
    }
    // The per-iteration counters partition the run totals exactly.
    assert_eq!(
        phases
            .iter()
            .map(|p| p.at("vpu_cycles").uint())
            .sum::<u64>(),
        run.vpu_cycles
    );
    assert_eq!(
        phases
            .iter()
            .map(|p| p.at("vpu").at("vloads").uint())
            .sum::<u64>(),
        run.vpu.vloads
    );
    assert_eq!(
        phases
            .iter()
            .map(|p| p.at("mem").at("vmu_bytes").uint())
            .sum::<u64>(),
        run.mem.vmu_bytes
    );
    // Pipeline stages stay unlabelled: no iter key outside iterated mixes.
    let pipe = Composite::pipelined(
        vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))],
        vec![composite::links(&[("y", "v")])],
    );
    let piped = run_workload(&pipe, &ScenarioConfig::ava_x(2));
    assert!(!piped.to_json().to_string().contains("\"iter\""));
}

#[test]
fn scenario_axis_metadata_round_trips_through_the_json_pipeline() {
    let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256))];
    let scenarios = ScenarioConfig::axis_l2_kib(&ScenarioConfig::axis_mvl(&[128, 256]), &[512]);
    let report = Sweep::grid(workloads, scenarios).runner().threads(1).run();
    let parsed = parse(&report.to_json().to_string()).unwrap();

    // The sweep-level axis summary lists every axis in play.
    assert_eq!(parsed.at("axes"), &Json::from_iter(["mvl", "l2_kib"]));
    // Each embedded report carries its own axis values.
    let points = parsed.at("points").items();
    assert_eq!(points.len(), 2);
    let first = points[0].at("report");
    assert_eq!(first.at("config").text(), "AVA MVL=128 l2=512KiB");
    assert_eq!(first.at("axes").at("mvl").uint(), 128);
    assert_eq!(first.at("axes").at("l2_kib").uint(), 512);
    let second = points[1].at("report");
    assert_eq!(second.at("axes").at("mvl").uint(), 256);
}
