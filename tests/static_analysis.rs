//! Golden-diagnostic tests for the `ava-lint` static analyzer: the real
//! bugs hit while growing this repo — the PR 3 pre-`vsetvl` splat and the
//! PR 4 wrong-buffer rebase — reconstructed as deliberately broken kernels
//! and rejected *statically*, with their named diagnostics, before any
//! simulation runs. The flip side is locked down too: every shipped
//! workload and composite mix lints clean in deny mode across the MVL
//! range, so the analyzer can gate construction without false positives.

use std::sync::Arc;

use ava::compiler::analysis::{analyze, AnalysisInput, Arena, Code, Severity};
use ava::compiler::ir::{IrInstr, IrOperand};
use ava::compiler::{IrKernel, KernelBuilder, RebaseRule, VirtReg};
use ava::isa::{Opcode, VectorContext};
use ava::memory::MemoryHierarchy;
use ava::workloads::{
    composite, Axpy, Blackscholes, BufferBindings, Composite, DataLayout, LavaMd2, OutputValues,
    ParticleFilter, PlannedLayout, SharedWorkload, Somier, Swaptions, Workload, WorkloadSetup,
};

// ---------------------------------------------------------------------
// The PR 3 bug class: splat before any vsetvl
// ---------------------------------------------------------------------

/// The splat-before-`vsetvl` kernel shape that corrupted wide strips in
/// PR 3, caught statically as AVA001 at the splat's IR index.
#[test]
fn reconstructed_splat_bug_is_rejected_at_kernel_level() {
    let mut b = KernelBuilder::new("bad-splat");
    let c = b.vsplat(2.0); // the bug: VL is whatever the last kernel left
    b.set_vl(16);
    let x = b.vload(0x1000);
    let r = b.vfmul(x, c);
    b.vstore(r, 0x2000);

    let report = analyze(&b.finish(), &AnalysisInput::new(Some(16)));
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::SplatBeforeSetVl)
        .expect("AVA001 must fire");
    assert_eq!(d.ir_index, 0);
    assert_eq!(d.severity, Severity::Error);
    assert!(!report.is_clean(Severity::Warn), "{report}");
    // The same kernel with the preamble in the right order is clean.
    let mut ok = KernelBuilder::new("ok-splat");
    ok.set_vl(16);
    let c = ok.vsplat(2.0);
    let x = ok.vload(0x1000);
    let r = ok.vfmul(x, c);
    ok.vstore(r, 0x2000);
    assert!(analyze(&ok.finish(), &AnalysisInput::new(Some(16))).is_clean(Severity::Info));
}

/// An axpy variant that splats a constant before its `vsetvl` preamble —
/// byte-for-byte the PR 3 bug, wrapped in a phase of a pipelined
/// composite.
struct SplatsTooEarly;

impl Workload for SplatsTooEarly {
    fn name(&self) -> &'static str {
        "axpy"
    }
    fn domain(&self) -> &'static str {
        "test"
    }
    fn elements(&self) -> usize {
        Axpy::new(256).elements()
    }
    fn data_layout(&self) -> DataLayout {
        Axpy::new(256).data_layout()
    }
    fn build_with_bindings(
        &self,
        mem: &mut MemoryHierarchy,
        ctx: &VectorContext,
        plan: &PlannedLayout,
        bindings: &BufferBindings,
    ) -> WorkloadSetup {
        let part = Axpy::new(256).build_with_bindings(mem, ctx, plan, bindings);
        let mut b = KernelBuilder::new("axpy");
        let _ = b.vsplat(2.0); // before any vsetvl: the PR 3 bug
        let mut kernel = b.finish();
        kernel.concat_remapped(&part.kernel, &[]);
        WorkloadSetup { kernel, ..part }
    }
}

/// Deny-by-default at the composite constructor: the broken phase is
/// rejected with its named diagnostic the moment the composite is wired,
/// before any simulation (or even register allocation) runs.
#[test]
#[should_panic(expected = "AVA001")]
fn composite_construction_rejects_a_splat_before_vsetvl_phase() {
    let _ = Composite::pipelined(
        vec![Arc::new(SplatsTooEarly), Arc::new(Somier::new(256))],
        vec![composite::links(&[("y", "v")])],
    );
}

// ---------------------------------------------------------------------
// The PR 4 bug class: a rebase that misses its placeholder buffer
// ---------------------------------------------------------------------

/// The wrong-buffer rebase of PR 4, reconstructed at the kernel level: a
/// consumer generated against a placeholder input is concatenated with a
/// `RebaseRule` whose `old_base` names the wrong buffer, so the
/// placeholder accesses survive — AVA002, statically, where the runtime
/// symptom was a validation failure deep inside a sweep.
#[test]
fn reconstructed_wrong_buffer_rebase_is_rejected_statically() {
    let build_pipeline = |rebase: RebaseRule| {
        let mut prod = KernelBuilder::new("producer");
        prod.set_vl(8);
        let x = prod.vload(0x1000);
        let y = prod.vfadd(x, 1.0);
        prod.vstore(y, 0x2000);
        let mut kernel = prod.finish();
        let producer_end = kernel.len();

        let mut cons = KernelBuilder::new("consumer");
        cons.set_vl(8);
        let v = cons.vload(0x3000); // generated against the placeholder
        let r = cons.vfmul(v, v);
        cons.vstore(r, 0x4000);
        kernel.concat_remapped(&cons.finish(), &[rebase]);
        (kernel, producer_end)
    };
    let arenas = || {
        vec![
            Arena::new("p0.x", 0x1000, 0x40),
            Arena::new("p0.y", 0x2000, 0x40),
            // The consumer's planned input: a pipelined composite rebases
            // every access out of it, so any survivor is a wiring bug.
            Arena::new("p1.v", 0x3000, 0x40).as_placeholder(),
            Arena::new("p1.out", 0x4000, 0x40),
        ]
    };

    // The bug: old_base names a buffer the consumer never touches, so the
    // placeholder loads are left behind.
    let wrong = RebaseRule {
        old_base: 0x9000,
        bytes: 0x40,
        new_base: 0x2000,
    };
    let (kernel, producer_end) = build_pipeline(wrong);
    let input = AnalysisInput::new(Some(8))
        .with_arenas(arenas())
        .with_phase_ends(vec![producer_end]);
    let report = analyze(&kernel, &input);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::UncoveredPlaceholder)
        .expect("AVA002 must fire");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("p1.v"), "{d}");

    // The correct rule — placeholder onto the producer's output — is clean.
    let right = RebaseRule {
        old_base: 0x3000,
        bytes: 0x40,
        new_base: 0x2000,
    };
    let (kernel, producer_end) = build_pipeline(right);
    let input = AnalysisInput::new(Some(8))
        .with_arenas(arenas())
        .with_phase_ends(vec![producer_end]);
    assert!(analyze(&kernel, &input).is_clean(Severity::Info));
}

// ---------------------------------------------------------------------
// Carried-buffer destruction in an iterated composite
// ---------------------------------------------------------------------

/// A solver body that overwrites its carried input array in place and then
/// reads it back within the same iteration — the carried value is gone by
/// the time it is consumed.
struct DestroysItsCarry;

impl Workload for DestroysItsCarry {
    fn name(&self) -> &'static str {
        "badcarry"
    }
    fn domain(&self) -> &'static str {
        "test"
    }
    fn elements(&self) -> usize {
        16
    }
    fn data_layout(&self) -> DataLayout {
        let mut l = DataLayout::new();
        l.input("x", 16);
        l.output("xout", 16);
        l
    }
    fn build_with_bindings(
        &self,
        _mem: &mut MemoryHierarchy,
        _ctx: &VectorContext,
        plan: &PlannedLayout,
        _bindings: &BufferBindings,
    ) -> WorkloadSetup {
        let xa = plan.addr("x");
        let oa = plan.addr("xout");
        let mut b = KernelBuilder::new("badcarry");
        b.set_vl(16);
        let x = b.vload(xa);
        let y = b.vfadd(x, 1.0);
        b.vstore(y, xa); // destroys the carried array in place...
        let z = b.vload(xa); // ...then reads it back: AVA003
        b.vstore(z, oa);
        WorkloadSetup {
            kernel: b.finish(),
            checks: Vec::new(),
            strips: 1,
            outputs: vec![OutputValues {
                name: "xout".to_string(),
                base: oa,
                values: vec![0.0; 16],
            }],
            warm_ranges: Vec::new(),
            phase_marks: Vec::new(),
        }
    }
}

#[test]
#[should_panic(expected = "AVA003")]
fn iterated_construction_rejects_a_body_destroying_its_carry() {
    let _ = Composite::iterated(
        Arc::new(DestroysItsCarry),
        2,
        composite::links(&[("xout", "x")]),
    );
}

// ---------------------------------------------------------------------
// The remaining codes, end to end through `analyze`
// ---------------------------------------------------------------------

#[test]
fn stale_lane_escape_is_a_warning_that_deny_mode_catches() {
    let mut b = KernelBuilder::new("stale");
    b.set_vl(4);
    let x = b.vload(0x1000);
    b.set_vl(16);
    let r = b.vfadd(x, 1.0); // lanes 4..16 stale
    b.vstore(r, 0x2000); // ...and materialised: AVA004
    let report = analyze(&b.finish(), &AnalysisInput::new(Some(16)));
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::NarrowDefWideUse)
        .expect("AVA004 must fire");
    assert_eq!(d.severity, Severity::Warn);
    assert!(!report.is_clean(Severity::Warn), "deny mode must fail");
    assert!(report.is_clean(Severity::Error), "warn mode must pass");
}

#[test]
fn ssa_violations_report_use_before_def_and_redefinition() {
    let scalar_one: IrOperand = 1.0.into();
    let kernel = IrKernel {
        name: "ssa".to_string(),
        instrs: vec![
            IrInstr {
                opcode: Opcode::SetVl,
                dst: None,
                srcs: Vec::new(),
                mem: None,
                setvl_request: Some(8),
            },
            // v1 is read before anything defines it.
            IrInstr {
                opcode: Opcode::VFAdd,
                dst: Some(VirtReg(0)),
                srcs: vec![IrOperand::Reg(VirtReg(1)), scalar_one],
                mem: None,
                setvl_request: None,
            },
            // v0 is defined a second time.
            IrInstr {
                opcode: Opcode::VFAdd,
                dst: Some(VirtReg(0)),
                srcs: vec![IrOperand::Reg(VirtReg(0)), scalar_one],
                mem: None,
                setvl_request: None,
            },
        ],
        num_virt_regs: 2,
    };
    let report = analyze(&kernel, &AnalysisInput::new(Some(8)));
    assert!(report.has(Code::UseBeforeDef), "{report}");
    assert!(report.has(Code::Redefinition), "{report}");
    assert!(!report.is_clean(Severity::Error));

    // A definition nothing ever reads is the milder AVA104 warning.
    let mut b = KernelBuilder::new("unused");
    b.set_vl(8);
    let _ = b.vsplat(1.0);
    let x = b.vload(0x1000);
    b.vstore(x, 0x2000);
    let report = analyze(&b.finish(), &AnalysisInput::new(Some(8)));
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::UnusedDef)
        .expect("AVA104 must fire");
    assert_eq!(d.severity, Severity::Warn);
}

#[test]
fn dead_stores_are_informational_and_do_not_fail_deny_mode() {
    let mut b = KernelBuilder::new("dead");
    b.set_vl(8);
    let x = b.vload(0x1000);
    b.vstore(x, 0x2000);
    let y = b.vfadd(x, 1.0);
    b.vstore(y, 0x2000); // fully overwrites the first store: AVA103
    let report = analyze(
        &b.finish(),
        &AnalysisInput::new(Some(8)).with_arenas(vec![
            Arena::new("x", 0x1000, 0x40),
            Arena::new("y", 0x2000, 0x40),
        ]),
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::DeadStore)
        .expect("AVA103 must fire");
    assert_eq!(d.severity, Severity::Info);
    assert!(report.is_clean(Severity::Warn), "info must not gate deny");
}

#[test]
fn out_of_arena_and_straddling_accesses_are_errors() {
    let mut b = KernelBuilder::new("oob");
    b.set_vl(8);
    let stray = b.vload(0x9000); // no arena owns this: AVA201
    b.vstore(stray, 0x2000);
    let tail = b.vload(0x1020); // 8 lanes from 0x20 run past 0x40: AVA202
    b.vstore(tail, 0x2000);
    let report = analyze(
        &b.finish(),
        &AnalysisInput::new(Some(8)).with_arenas(vec![
            Arena::new("x", 0x1000, 0x40),
            Arena::new("y", 0x2000, 0x40),
        ]),
    );
    assert!(report.has(Code::OutOfArena), "{report}");
    assert!(report.has(Code::StraddlesArena), "{report}");
    assert!(!report.is_clean(Severity::Error));
}

// ---------------------------------------------------------------------
// No false positives: everything shipped lints clean in deny mode
// ---------------------------------------------------------------------

/// Every shipped workload and both composite mixes, verified across the
/// full MVL range (including the 512 extrapolation point), produce zero
/// warn-or-worse findings — the deny gate in the composite constructors
/// and CI can never trip on correct code.
#[test]
fn all_shipped_workloads_and_mixes_lint_clean_in_deny_mode() {
    let workloads: Vec<SharedWorkload> = vec![
        Arc::new(Axpy::new(1024)),
        Arc::new(Blackscholes::new(256)),
        Arc::new(LavaMd2::new(16, 2)),
        Arc::new(ParticleFilter::new(512, 32)),
        Arc::new(Somier::new(1024)),
        Arc::new(Swaptions::new(256)),
        Arc::new(Somier::relaxation(1024)),
        Arc::new(Composite::pipelined(
            vec![Arc::new(Axpy::new(1024)), Arc::new(Somier::new(1024))],
            vec![composite::links(&[("y", "v")])],
        )),
        Arc::new(Composite::iterated(
            Arc::new(Somier::relaxation(1024)),
            3,
            composite::links(&[("xout", "x"), ("vout", "v")]),
        )),
    ];
    for w in &workloads {
        for mvl in [16, 64, 128, 512] {
            let report = w.verify(mvl);
            assert!(
                report.is_clean(Severity::Warn),
                "{} at MVL {mvl} is not clean:\n{report}",
                w.name()
            );
        }
    }
}
