//! The declarative experiment manifests, exercised end to end: the
//! committed `experiments/` files parse and round-trip, schema errors are
//! byte-offset diagnostics (never panics), a spec-driven run is
//! byte-identical to the legacy flag invocation of the same experiment,
//! and a store-attached manifest run resumes from its checkpoints.

use std::path::PathBuf;

use ava::sim::json::Json;
use ava_bench::cli::BenchArgs;
use ava_bench::driver;
use ava_bench::spec::{ArtefactKind, ExperimentSpec};

fn plain_args() -> BenchArgs {
    BenchArgs::from_args(vec!["--threads".into(), "1".into()]).unwrap()
}

/// The deterministic per-point payloads of a driver document: the nested
/// simulation reports, without the scheduling metadata (`wall_ns`,
/// `worker`, `cost_estimate`) that naturally moves run to run. This is the
/// same convention the CI store/shard gates compare under.
fn point_reports(doc: &Json) -> Vec<String> {
    doc.get("sweep")
        .and_then(|s| s.get("points"))
        .and_then(Json::as_arr)
        .expect("document carries sweep points")
        .iter()
        .map(|p| p.get("report").expect("point carries a report").to_string())
        .collect()
}

fn store_hits(doc: &Json) -> (u64, u64) {
    let store = doc
        .get("sweep")
        .and_then(|s| s.get("store"))
        .expect("document carries store statistics");
    (
        store.get("hits").and_then(Json::as_u64).unwrap(),
        store.get("misses").and_then(Json::as_u64).unwrap(),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ava-manifest-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every committed manifest in `experiments/` parses, carries a name, and
/// survives a to_json → parse round trip unchanged.
#[test]
fn committed_manifests_parse_and_round_trip() {
    let mut seen = 0usize;
    for entry in std::fs::read_dir("experiments").expect("experiments/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        seen += 1;
        let label = path.display().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = ExperimentSpec::parse(&label, &text)
            .unwrap_or_else(|e| panic!("{label} must parse: {e}"));
        assert!(
            spec.name.is_some(),
            "{label}: committed manifests are named"
        );
        let reparsed = ExperimentSpec::parse(&label, &spec.to_json().to_string()).unwrap();
        assert_eq!(spec, reparsed, "{label}: round trip changed the spec");
    }
    assert!(
        seen >= 7,
        "expected the committed manifest set, found {seen}"
    );
}

/// Unknown fields, workload names and axes are rejected with a diagnostic
/// naming the token and its byte offset in the document — never a panic.
#[test]
fn schema_errors_name_the_token_and_its_byte_offset() {
    for (text, token) in [
        (r#"{"artefact": "fig3", "frobnicate": 1}"#, "frobnicate"),
        (r#"{"artefact": "fig3", "workloads": ["vecsum"]}"#, "vecsum"),
        (
            r#"{"artefact": "sensitivity", "axes": {"l3_kib": [512]}}"#,
            "l3_kib",
        ),
        (
            r#"{"artefact": "sensitivity", "output": {"kind": "sparkline"}}"#,
            "sparkline",
        ),
        (
            r#"{"artefact": "fig3", "execution": {"shards": "0/2"}}"#,
            "shards",
        ),
    ] {
        let err = ExperimentSpec::parse("t", text).unwrap_err();
        let offset = text.find(&format!("\"{token}\"")).unwrap();
        assert!(
            err.contains(token) && err.contains(&format!("byte {offset}")),
            "{text} -> {err}"
        );
    }
    // Malformed JSON surfaces the parser's own byte-offset diagnostic.
    let err = ExperimentSpec::parse("t", r#"{"artefact": "fig3","#).unwrap_err();
    assert!(err.contains("byte"), "{err}");
}

/// The committed fig3 manifest reproduces the fig3 binary's output byte
/// for byte: same chart text, same energy JSON, same per-point reports.
/// (Both the binary and the manifest path run through the same driver, so
/// this pins the flag translation — and the committed file — against it.)
#[test]
fn fig3_manifest_matches_the_legacy_flag_invocation() {
    let text = std::fs::read_to_string("experiments/fig3_extrapolation.json").unwrap();
    let mut from_manifest =
        ExperimentSpec::parse("experiments/fig3_extrapolation.json", &text).unwrap();
    // The full six-workload figure is CI territory; the axpy column pins
    // the whole path at test speed.
    from_manifest.app = Some("axpy".to_string());
    let from_flags =
        ExperimentSpec::fig3(Some("axpy".to_string()), "all", "independent", None).unwrap();

    let a = driver::execute(&from_manifest, &plain_args()).unwrap();
    let b = driver::execute(&from_flags, &plain_args()).unwrap();
    assert!(!a.stdout.is_empty());
    assert_eq!(a.stdout, b.stdout, "chart text must be byte-identical");
    assert_eq!(
        a.document.get("energy").unwrap().to_string(),
        b.document.get("energy").unwrap().to_string(),
        "energy JSON must be byte-identical"
    );
    assert_eq!(point_reports(&a.document), point_reports(&b.document));
}

/// A hand-written sensitivity manifest (axes, chart kind, app filter)
/// matches the equivalent legacy flag invocation byte for byte — including
/// the energy matrix, which both paths render through the same formatter.
#[test]
fn sensitivity_manifest_matches_the_legacy_flag_invocation() {
    let text = r#"{
        "artefact": "sensitivity",
        "workloads": [
            {"name": "axpy", "n": 32768},
            {"name": "blackscholes", "n": 8192},
            {"name": "somier", "n": 16384},
            {"name": "composite", "n": 16384}
        ],
        "app": "axpy",
        "axes": {"mvl": [128, 256], "l2_kib": [512]},
        "output": {"kind": "all"}
    }"#;
    let from_manifest = ExperimentSpec::parse("inline", text).unwrap();

    let axes = ava_bench::spec::AxesSpec {
        mvl: vec![128, 256],
        l2_kib: vec![512],
        ..Default::default()
    };
    let from_flags =
        ExperimentSpec::sensitivity(axes, "independent", None, Some("axpy".to_string()), "all")
            .unwrap();

    let a = driver::execute(&from_manifest, &plain_args()).unwrap();
    let b = driver::execute(&from_flags, &plain_args()).unwrap();
    assert_eq!(
        a.stdout, b.stdout,
        "table + energy text must be byte-identical"
    );
    assert!(
        a.stdout
            .contains("total energy (mJ) by MVL and L2 capacity"),
        "kind \"all\" renders the energy matrix"
    );
    assert_eq!(point_reports(&a.document), point_reports(&b.document));
    assert_eq!(
        a.document.get("axes").unwrap().to_string(),
        b.document.get("axes").unwrap().to_string()
    );
}

/// A manifest whose `execution` block attaches a store checkpoints its
/// points; rerunning the same manifest with `resume` is served entirely
/// from disk with bit-identical reports.
#[test]
fn store_attached_manifest_run_resumes_from_its_checkpoints() {
    let dir = temp_dir("resume");
    let manifest = format!(
        r#"{{
            "artefact": "fig3",
            "workloads": [{{"name": "axpy", "n": 512}}],
            "output": {{"kind": "perf"}},
            "execution": {{"store": {:?}}}
        }}"#,
        dir.to_str().unwrap()
    );
    let spec = ExperimentSpec::parse("inline", &manifest).unwrap();

    let mut cold_args = plain_args();
    cold_args.apply_execution(&spec.execution).unwrap();
    let cold = driver::execute(&spec, &cold_args).unwrap();
    let n = point_reports(&cold.document).len() as u64;
    assert_eq!(store_hits(&cold.document), (0, n));

    // The warm rerun flips `resume` on — as a manifest field, the way a
    // relaunched job would ship it.
    let mut resumed = spec.clone();
    resumed.execution.resume = true;
    let mut warm_args = plain_args();
    warm_args.apply_execution(&resumed.execution).unwrap();
    assert!(warm_args.resume);
    let warm = driver::execute(&resumed, &warm_args).unwrap();
    assert_eq!(
        store_hits(&warm.document),
        (n, 0),
        "warm run simulates nothing"
    );
    assert_eq!(point_reports(&cold.document), point_reports(&warm.document));
    assert_eq!(cold.stdout, warm.stdout);

    // Resuming against a store directory that does not exist is the legacy
    // "nothing to resume" diagnostic, raised at merge time.
    let missing = temp_dir("missing");
    let mut bad = spec.clone();
    bad.execution.store = Some(missing.to_str().unwrap().to_string());
    bad.execution.resume = true;
    let err = plain_args().apply_execution(&bad.execution).unwrap_err();
    assert!(err.contains("nothing to resume"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `scale_down` shrinks every dimension the driver honours: one workload,
/// truncated axes, and (for fig3) the two-system evaluated list.
#[test]
fn scale_down_runs_the_reduced_grids() {
    let text = std::fs::read_to_string("experiments/fig3_extrapolation.json").unwrap();
    let mut spec = ExperimentSpec::parse("experiments/fig3_extrapolation.json", &text).unwrap();
    spec.scale_down();
    assert_eq!(spec.workloads.len(), 1);
    let run = driver::execute(&spec, &plain_args()).unwrap();
    assert_eq!(
        point_reports(&run.document).len(),
        2,
        "reduced fig3 is one workload over two systems"
    );

    let mut ablation = ExperimentSpec::parse("t", r#"{"artefact": "ablation"}"#).unwrap();
    ablation.scale_down();
    assert_eq!(ablation.artefact, ArtefactKind::Ablation);
    let run = driver::execute(&ablation, &plain_args()).unwrap();
    assert!(run.stdout.contains("swap-free baseline"));
    assert!(run.stdout.contains("swap-heavy AVA"));
}
