//! Integration tests for the qualitative results of the paper's evaluation:
//! the orderings, crossovers and approximate factors of Figures 3 and 4 and
//! Tables I and V. Absolute cycle counts differ from the paper (our
//! substrate is a from-scratch simulator, not the authors' gem5 testbed);
//! these tests pin down the *shapes* that must hold.

use ava::energy::{pnr_estimate, vpu_area};
use ava::isa::Lmul;
use ava::sim::{run_workload, ScenarioConfig};
use ava::vpu::{preg_count_for_mvl, VpuConfig};
use ava::workloads::{Axpy, Blackscholes, LavaMd2, ParticleFilter, Somier, Swaptions, Workload};

fn speedup(workload: &dyn Workload, sys: &ScenarioConfig) -> f64 {
    let base = run_workload(workload, &ScenarioConfig::native_x(1));
    let this = run_workload(workload, sys);
    assert!(base.validated && this.validated);
    base.cycles as f64 / this.cycles as f64
}

// ----------------------------------------------------------------- Table I

#[test]
fn table1_physical_register_counts() {
    let expected = [
        (16, 64),
        (32, 32),
        (48, 21),
        (64, 16),
        (80, 12),
        (96, 10),
        (112, 9),
        (128, 8),
    ];
    for (mvl, pregs) in expected {
        assert_eq!(preg_count_for_mvl(8 * 1024, mvl), pregs);
    }
}

// --------------------------------------------------------------- Figure 3a (Axpy)

#[test]
fn axpy_reconfiguration_approaches_2x_and_matches_native() {
    let w = Axpy::new(4096);
    let ava8 = speedup(&w, &ScenarioConfig::ava_x(8));
    let native8 = speedup(&w, &ScenarioConfig::native_x(8));
    let rg8 = speedup(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
    // Paper: all three reach ~2x over the short-vector baseline.
    assert!(ava8 > 1.7, "AVA X8 speedup {ava8}");
    assert!(
        (ava8 - native8).abs() / native8 < 0.05,
        "AVA X8 {ava8} vs NATIVE X8 {native8}"
    );
    assert!(
        (rg8 - native8).abs() / native8 < 0.10,
        "RG-LMUL8 {rg8} vs NATIVE X8 {native8}"
    );
    // And no spill or swap operations exist for this two-register kernel.
    let r = run_workload(&w, &ScenarioConfig::ava_x(8));
    assert_eq!(r.vpu.swap_ops() + r.vpu.spill_ops(), 0);
}

#[test]
fn axpy_speedup_grows_monotonically_with_mvl() {
    let w = Axpy::new(4096);
    let mut last = 0.0;
    for n in [1, 2, 3, 4, 8] {
        let s = speedup(&w, &ScenarioConfig::native_x(n));
        assert!(s >= last - 0.05, "NATIVE X{n} regressed: {s} < {last}");
        last = s;
    }
    assert!(last > 1.7, "NATIVE X8 should approach ~2x, got {last}");
}

// ------------------------------------------------------- Figure 3b (Blackscholes)

#[test]
fn blackscholes_ava_x2_needs_no_swaps_but_rg_lmul2_spills() {
    let w = Blackscholes::new(512);
    let ava2 = run_workload(&w, &ScenarioConfig::ava_x(2));
    assert_eq!(
        ava2.vpu.swap_ops(),
        0,
        "32 physical registers fit the kernel"
    );
    let rg2 = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M2));
    assert!(rg2.vpu.spill_ops() > 0, "16 architectural registers do not");
}

#[test]
fn blackscholes_ava_swaps_stay_below_rg_spills() {
    // Paper §V: AVA schedules with twice the registers of the equivalent
    // LMUL configuration, so it produces fewer swap operations than the
    // compiler produces spill operations.
    let w = Blackscholes::new(512);
    for (ava, rg) in [
        (ScenarioConfig::ava_x(4), ScenarioConfig::rg_lmul(Lmul::M4)),
        (ScenarioConfig::ava_x(8), ScenarioConfig::rg_lmul(Lmul::M8)),
    ] {
        let a = run_workload(&w, &ava);
        let r = run_workload(&w, &rg);
        assert!(
            a.vpu.swap_ops() <= r.vpu.spill_ops() + r.vpu.spill_ops() / 10,
            "{}: swaps {} vs {} spills {}",
            ava.label(),
            a.vpu.swap_ops(),
            rg.label(),
            r.vpu.spill_ops()
        );
        assert!(a.memory_instructions() <= r.memory_instructions());
    }
}

#[test]
fn blackscholes_ava_x8_beats_rg_lmul8() {
    let w = Blackscholes::new(512);
    let ava = speedup(&w, &ScenarioConfig::ava_x(8));
    let rg = speedup(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
    assert!(ava > rg, "AVA X8 {ava} should beat RG-LMUL8 {rg}");
    assert!(
        ava > 1.3,
        "AVA X8 should still clearly beat the baseline, got {ava}"
    );
}

// ----------------------------------------------------------- Figure 3c (LavaMD2)

#[test]
fn lavamd_peaks_at_x3_and_larger_mvls_add_nothing() {
    let w = LavaMd2::new(24, 2);
    let x1 = speedup(&w, &ScenarioConfig::ava_x(1));
    let x3 = speedup(&w, &ScenarioConfig::ava_x(3));
    let x4 = speedup(&w, &ScenarioConfig::ava_x(4));
    assert!((x1 - 1.0).abs() < 1e-9);
    assert!(x3 > 1.2, "48-element vectors need MVL=48, got {x3}");
    assert!(
        x4 <= x3 + 0.05,
        "beyond VL=48 nothing improves: X4 {x4} vs X3 {x3}"
    );
    // X3 needs no swaps: 21 physical registers cover the kernel.
    let r3 = run_workload(&w, &ScenarioConfig::ava_x(3));
    assert_eq!(r3.vpu.swap_ops(), 0);
}

#[test]
fn lavamd_rg_lmul8_collapses_under_full_mvl_spill_code() {
    let w = LavaMd2::new(24, 2);
    let rg8 = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
    let rg8_speedup = speedup(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
    // Paper: RG-LMUL8 drops below the baseline (0.48x) because spill code
    // executes at MVL=128 while the application only uses 48 elements.
    assert!(
        rg8_speedup < 1.0,
        "RG-LMUL8 should fall below 1.0x, got {rg8_speedup}"
    );
    assert!(
        rg8.vpu.spill_ops() > rg8.vpu.vloads + rg8.vpu.vstores,
        "spill code should dominate the memory stream"
    );
    // AVA X8 also degrades but stays well above RG-LMUL8.
    let ava8 = speedup(&w, &ScenarioConfig::ava_x(8));
    assert!(
        ava8 > rg8_speedup,
        "AVA X8 {ava8} vs RG-LMUL8 {rg8_speedup}"
    );
}

// ----------------------------------------- Figure 3d/3e (Particle Filter, Somier)

#[test]
fn particlefilter_and_somier_scale_with_mvl_without_spills_until_the_extremes() {
    let pf = ParticleFilter::new(1024, 64);
    let so = Somier::new(2048);
    for n in [2usize, 4] {
        let r_pf = run_workload(&pf, &ScenarioConfig::ava_x(n));
        let r_so = run_workload(&so, &ScenarioConfig::ava_x(n));
        assert_eq!(r_pf.vpu.swap_ops(), 0, "particle filter AVA X{n}");
        assert_eq!(r_so.vpu.swap_ops(), 0, "somier AVA X{n}");
    }
    assert!(speedup(&pf, &ScenarioConfig::ava_x(4)) > 1.4);
    assert!(speedup(&so, &ScenarioConfig::ava_x(8)) > 1.6);
}

#[test]
fn somier_spills_only_at_lmul8() {
    let so = Somier::new(2048);
    assert_eq!(
        run_workload(&so, &ScenarioConfig::rg_lmul(Lmul::M4))
            .vpu
            .spill_ops(),
        0
    );
    assert!(
        run_workload(&so, &ScenarioConfig::rg_lmul(Lmul::M8))
            .vpu
            .spill_ops()
            > 0
    );
}

// --------------------------------------------------------- Figure 3f (Swaptions)

#[test]
fn swaptions_ava_outperforms_rg_at_every_grouping_factor() {
    let w = Swaptions::new(512);
    for (ava, rg) in [
        (ScenarioConfig::ava_x(4), ScenarioConfig::rg_lmul(Lmul::M4)),
        (ScenarioConfig::ava_x(8), ScenarioConfig::rg_lmul(Lmul::M8)),
    ] {
        let s_ava = speedup(&w, &ava);
        let s_rg = speedup(&w, &rg);
        assert!(
            s_ava > s_rg,
            "{}: {s_ava} vs {}: {s_rg}",
            ava.label(),
            rg.label()
        );
    }
}

// ------------------------------------------------------------------- Figure 4

#[test]
fn ava_saves_roughly_half_the_vpu_area_of_native_x8() {
    let ava = vpu_area(&VpuConfig::ava_x(8)).total();
    let native = vpu_area(&VpuConfig::native_x(8)).total();
    let saving = 1.0 - ava / native;
    assert!(
        (0.4..0.65).contains(&saving),
        "paper reports ~53 %, got {saving:.2}"
    );
    // The AVA structures themselves are a negligible fraction.
    let overhead =
        vpu_area(&VpuConfig::ava_x(1)).ava_structures / vpu_area(&VpuConfig::ava_x(1)).total();
    assert!(overhead < 0.01, "paper reports 0.55 %, got {overhead:.4}");
}

// -------------------------------------------------------------------- Table V

#[test]
fn pnr_estimates_reproduce_table_v_relationships() {
    let ava = pnr_estimate(&VpuConfig::ava_x(8));
    let native = pnr_estimate(&VpuConfig::native_x(8));
    assert!(ava.meets_timing() && !native.meets_timing());
    assert!(ava.area_mm2 < 0.65 * native.area_mm2);
    assert!(ava.power_mw < native.power_mw);
}
