//! Cross-process sharding and the work-stealing scheduler at scale: shard
//! slices must partition the grid exactly, concurrently-running shards over
//! one shared result store must merge into a report byte-identical to an
//! unsharded run, and the two-tier scheduler must preserve the bit-identity
//! guarantee on a grid two orders of magnitude larger than the acceptance
//! grid.

use std::sync::Arc;

use ava::isa::Lmul;
use ava::sim::{ResultStore, ScenarioConfig, Sweep};
use ava::workloads::{
    Axpy, Blackscholes, LavaMd2, ParticleFilter, SharedWorkload, Somier, Swaptions,
};

/// The same 42-point acceptance grid `tests/sweep_equivalence.rs` pins —
/// all three register-file organisations plus one deliberately skewed
/// point.
fn grid() -> Sweep {
    let workloads: Vec<SharedWorkload> = vec![
        Arc::new(Axpy::new(512)),
        Arc::new(Blackscholes::new(128)),
        Arc::new(LavaMd2::new(16, 2)),
        Arc::new(ParticleFilter::new(256, 32)),
        Arc::new(Somier::new(512)),
        Arc::new(Swaptions::new(128)),
        Arc::new(Blackscholes::new(512)),
    ];
    let systems = vec![
        ScenarioConfig::native_x(1),
        ScenarioConfig::native_x(8),
        ScenarioConfig::ava_x(2),
        ScenarioConfig::ava_x(8),
        ScenarioConfig::rg_lmul(Lmul::M4),
        ScenarioConfig::rg_lmul(Lmul::M8),
    ];
    Sweep::grid(workloads, systems)
}

/// Every split of the grid into `n` shards covers every point exactly once:
/// the slices are disjoint, exhaustive, and stable across calls — the
/// property that lets independent processes partition a grid without
/// talking to each other.
#[test]
fn shard_partition_is_disjoint_and_exhaustive_for_every_split() {
    let sweep = grid();
    for of in 1..=8 {
        let mut owners = vec![0usize; sweep.len()];
        for index in 0..of {
            let slice = sweep.shard_points(index, of);
            assert_eq!(
                slice,
                sweep.shard_points(index, of),
                "shard {index}/{of} must be deterministic"
            );
            for point in slice {
                owners[point] += 1;
            }
        }
        assert!(
            owners.iter().all(|&claims| claims == 1),
            "split into {of} shards must cover every point exactly once, got {owners:?}"
        );
    }
    // The single-shard degenerate case is the whole grid in order.
    let all: Vec<usize> = (0..sweep.len()).collect();
    assert_eq!(sweep.shard_points(0, 1), all);
}

/// Two shards running *concurrently* against one shared store — each with
/// its own independent `ResultStore` handle, as two separate processes
/// would hold — followed by an unsharded merge pass over the same store:
/// the merge must be all-hits (zero fresh simulations) and byte-identical,
/// point by point, to a plain unsharded run.
#[test]
fn concurrent_shards_merge_byte_identically_with_an_unsharded_run() {
    let dir = std::env::temp_dir().join(format!("ava-shard-merge-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let sweep = grid();
    let reference = sweep.runner().threads(2).run();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|index| {
                let dir = &dir;
                let sweep = &sweep;
                scope.spawn(move || {
                    let store = ResultStore::open(dir).unwrap();
                    sweep
                        .runner()
                        .threads(2)
                        .store(&store)
                        .shard(index, 2)
                        .run()
                })
            })
            .collect();
        for (index, handle) in handles.into_iter().enumerate() {
            let report = handle.join().expect("shard run must not panic");
            let owned = sweep.shard_points(index, 2);
            assert_eq!(report.shard, Some((index, 2)));
            assert_eq!(
                report.reports.len(),
                owned.len(),
                "shard {index}/2 must run exactly its slice"
            );
            // The slices are disjoint, so nothing a concurrent shard wrote
            // can satisfy this shard's lookups: every point simulates.
            assert_eq!(report.store_hits, 0, "shard {index}/2");
            assert_eq!(report.store_misses, owned.len() as u64, "shard {index}/2");
            for r in &report.reports {
                assert!(r.validated, "{} on {}", r.workload, r.config);
            }
        }
    });

    // The merge pass: same grid, same store, no shard filter.
    let store = ResultStore::open(&dir).unwrap();
    let merged = sweep.runner().threads(4).store(&store).run();
    assert_eq!(merged.shard, None);
    assert_eq!(
        merged.store_hits,
        sweep.len() as u64,
        "the merge pass must be served entirely from the shards' checkpoints"
    );
    assert_eq!(merged.store_misses, 0);
    assert_eq!(merged.reports.len(), reference.reports.len());
    for (expected, got) in reference.reports.iter().zip(&merged.reports) {
        let point = format!("{} on {}", expected.workload, expected.config);
        assert_eq!(
            format!("{expected:?}"),
            format!("{got:?}"),
            "{point}: merged report must match the unsharded run"
        );
        assert_eq!(
            expected.to_json().to_string(),
            got.to_json().to_string(),
            "{point}: merged JSON must be byte-identical"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The bit-identity guarantee at scale: a ~2k-point synthetic grid (256
/// axpy instances at distinct working-set sizes × 8 configurations) run
/// through the work-stealing scheduler at 8 workers must match the serial
/// run on every point. This is the grid shape where per-worker deques and
/// stealing actually engage — the 42-point acceptance grid drains before
/// most workers ever go idle.
#[test]
fn work_stealing_is_bit_identical_to_serial_on_a_two_thousand_point_grid() {
    let workloads: Vec<SharedWorkload> = (0..256)
        .map(|i| Arc::new(Axpy::new(64 + i * 2)) as SharedWorkload)
        .collect();
    let systems = vec![
        ScenarioConfig::native_x(1),
        ScenarioConfig::native_x(4),
        ScenarioConfig::ava_x(1),
        ScenarioConfig::ava_x(2),
        ScenarioConfig::ava_x(4),
        ScenarioConfig::ava_x(8),
        ScenarioConfig::rg_lmul(Lmul::M2),
        ScenarioConfig::rg_lmul(Lmul::M8),
    ];
    let sweep = Sweep::grid(workloads, systems);
    assert_eq!(sweep.len(), 2048);

    let serial = sweep.runner().threads(1).run();
    assert_eq!(serial.steals, 0, "one worker has nobody to steal from");
    let parallel = sweep.runner().threads(8).run();
    assert_eq!(serial.reports.len(), parallel.reports.len());
    for (s, p) in serial.reports.iter().zip(&parallel.reports) {
        assert_eq!(
            format!("{s:?}"),
            format!("{p:?}"),
            "{} on {}: 8-worker run must match serial",
            s.workload,
            s.config
        );
    }
    // Results come back in grid order regardless of execution order.
    for (i, r) in parallel.reports.iter().enumerate() {
        assert_eq!(r.workload, sweep.workloads()[i / 8].name());
    }
}

/// Shard bounds are enforced, not silently wrapped.
#[test]
#[should_panic(expected = "out of range")]
fn out_of_range_shard_index_panics() {
    let _ = grid().shard_points(4, 4);
}
