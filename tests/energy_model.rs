//! Cross-checks of the `ava-energy` physical models.
//!
//! Two layers of confidence:
//!
//! * the SRAM/area model is pinned against the McPAT-derived component
//!   areas the paper itself reports (Figure 4: 8 KB 4R-2W VRF = 0.18 mm²,
//!   64 KB = 1.41 mm², 1 MB L2 = 2.46 mm²) — the committed reference
//!   numbers the analytical constants were calibrated to;
//! * the energy breakdown is cross-checked *exactly* against the documented
//!   `EnergyParams` arithmetic on a synthetic report, and its shape is tied
//!   to the swap/spill counts an instrumented `SweepReport` records.

use std::sync::Arc;

use ava::energy::{energy_breakdown, system_area, EnergyParams, SramMacro};
use ava::isa::Lmul;
use ava::memory::MemoryStats;
use ava::scalar::ScalarCost;
use ava::sim::{RunReport, ScenarioConfig, Sweep};
use ava::vpu::VpuStats;
use ava::workloads::{Blackscholes, SharedWorkload, Workload};
use ava_bench::{energy_delay_mj_s, energy_per_element_nj};

/// Figure 4 component areas the SRAM constants were calibrated against.
const REF_VRF_8KB_MM2: f64 = 0.18;
const REF_VRF_64KB_MM2: f64 = 1.41;
const REF_L2_1MB_MM2: f64 = 2.46;

#[test]
fn sram_model_reproduces_the_committed_mcpat_references() {
    let vrf_8k = SramMacro::new(8 * 1024, 4, 2).area_mm2();
    let vrf_64k = SramMacro::new(64 * 1024, 4, 2).area_mm2();
    let l2 = SramMacro::new(1024 * 1024, 1, 1).area_mm2();
    assert!(
        (vrf_8k - REF_VRF_8KB_MM2).abs() / REF_VRF_8KB_MM2 < 0.2,
        "8 KB VRF: model {vrf_8k} vs reference {REF_VRF_8KB_MM2}"
    );
    assert!(
        (vrf_64k - REF_VRF_64KB_MM2).abs() / REF_VRF_64KB_MM2 < 0.1,
        "64 KB VRF: model {vrf_64k} vs reference {REF_VRF_64KB_MM2}"
    );
    assert!(
        (l2 - REF_L2_1MB_MM2).abs() / REF_L2_1MB_MM2 < 0.1,
        "1 MB L2: model {l2} vs reference {REF_L2_1MB_MM2}"
    );
    // The same anchors hold end to end through the system-area model.
    let native1 = system_area(&ScenarioConfig::native_x(1).vpu_config());
    let native8 = system_area(&ScenarioConfig::native_x(8).vpu_config());
    assert!((native1.vpu.vrf - vrf_8k).abs() < 1e-12);
    assert!((native8.vpu.vrf - vrf_64k).abs() < 1e-12);
}

/// A report with every counter zero except what the test sets.
fn synthetic_report(config: &str) -> RunReport {
    RunReport {
        config: config.to_string(),
        axes: Vec::new(),
        workload: "synthetic".to_string(),
        vpu_cycles: 1_000_000,
        cycles: 1_000_000,
        vpu: VpuStats::default(),
        mem: MemoryStats::default(),
        phases: Vec::new(),
        compiler_spill_stores: 0,
        compiler_spill_loads: 0,
        register_pressure: 0,
        scalar: ScalarCost {
            instructions: 0,
            scalar_cycles: 0,
            vpu_cycles: 0,
        },
        validated: true,
        validation_error: None,
    }
}

#[test]
fn energy_breakdown_matches_the_documented_constants_exactly() {
    let params = EnergyParams::default();
    let config = ScenarioConfig::native_x(1).vpu_config();
    let mut report = synthetic_report("NATIVE X1");
    report.mem.l2.read_hits = 1_000;
    report.mem.l2.read_misses = 200;
    report.mem.dram_bytes = 64 * 200;
    report.vpu.vrf_read_elems = 5_000;
    report.vpu.vrf_write_elems = 2_500;
    report.vpu.fpu_ops = 10_000;
    report.vpu.int_ops = 4_000;
    let e = energy_breakdown(&report, &config, &params);

    let pj_to_mj = 1.0e-9;
    let seconds = 1_000_000.0 / 1.0e9;
    let expected_l2_dyn =
        (1_200.0 * params.l2_pj_per_access + 12_800.0 * params.dram_pj_per_byte) * pj_to_mj;
    assert!((e.l2_dynamic - expected_l2_dyn).abs() < 1e-15);
    let vrf_macro = SramMacro::new(config.pvrf_bytes, 4, 2);
    let expected_vrf_dyn = 7_500.0 * vrf_macro.energy_per_access_pj() * pj_to_mj;
    assert!((e.vrf_dynamic - expected_vrf_dyn).abs() < 1e-15);
    let expected_fpu_dyn =
        (10_000.0 * params.fpu_pj_per_op + 4_000.0 * params.int_pj_per_op) * pj_to_mj;
    assert!((e.fpu_dynamic - expected_fpu_dyn).abs() < 1e-15);
    // Leakage is leakage power (mW) times the execution time.
    assert!((e.vrf_leakage - vrf_macro.leakage_mw() * seconds).abs() < 1e-15);
    assert!(
        (e.l2_leakage - SramMacro::new(1024 * 1024, 1, 1).leakage_mw() * seconds).abs() < 1e-15
    );
    assert!((e.fpu_leakage - params.fpu_leakage_mw * seconds).abs() < 1e-15);
}

#[test]
fn marginal_traffic_counters_price_linearly() {
    // The marginal dynamic energy of extra recorded traffic is exactly the
    // per-event constant — the property that lets the spill/swap counts of
    // a sweep be read as energy deltas.
    let params = EnergyParams::default();
    let config = ScenarioConfig::native_x(1).vpu_config();
    let base = synthetic_report("NATIVE X1");
    let mut more = base.clone();
    more.mem.l2.read_hits += 1_000;
    more.vpu.vrf_write_elems += 7_000;
    let e_base = energy_breakdown(&base, &config, &params);
    let e_more = energy_breakdown(&more, &config, &params);
    let pj_to_mj = 1.0e-9;
    let expected_l2 = 1_000.0 * params.l2_pj_per_access * pj_to_mj;
    let vrf_macro = SramMacro::new(config.pvrf_bytes, 4, 2);
    let expected_vrf = 7_000.0 * vrf_macro.energy_per_access_pj() * pj_to_mj;
    assert!((e_more.l2_dynamic - e_base.l2_dynamic - expected_l2).abs() < 1e-15);
    assert!((e_more.vrf_dynamic - e_base.vrf_dynamic - expected_vrf).abs() < 1e-15);
    // Leakage depends only on time, which did not change.
    assert_eq!(e_more.l2_leakage, e_base.l2_leakage);
    assert_eq!(e_more.vrf_leakage, e_base.vrf_leakage);
}

#[test]
fn derived_energy_metrics_match_exact_arithmetic() {
    // The derived metrics are pure arithmetic over the breakdown — pin them
    // exactly (bit-for-bit, not within a tolerance) against the documented
    // formulas on a real simulated point.
    let params = EnergyParams::default();
    let workload = Blackscholes::new(128);
    let scenario = ScenarioConfig::ava_x(4);
    let report = ava::sim::run_workload(&workload, &scenario);
    let e = energy_breakdown(&report, &scenario.vpu_config(), &params);

    let seconds = report.cycles as f64 / 1.0e9;
    assert_eq!(energy_delay_mj_s(&e, report.seconds()), e.total() * seconds);
    let elements = workload.elements() as u64;
    assert_eq!(
        energy_per_element_nj(&e, elements),
        e.total() * 1.0e6 / elements as f64
    );
    // Derived metrics land in the per-point energy JSON of the sweep
    // pipeline with exactly these values.
    let sweep = Sweep::grid(
        vec![Arc::new(workload) as SharedWorkload],
        vec![scenario.clone()],
    );
    let sweep_report = sweep.runner().threads(1).run();
    let json = ava_bench::sweep_energy_json(&sweep_report, sweep.resolved_systems()).to_string();
    let expected_delay = energy_delay_mj_s(&e, report.seconds());
    let expected_per_elem = energy_per_element_nj(&e, elements);
    assert!(
        json.contains(&format!("\"energy_delay_mj_s\":{expected_delay}")),
        "{json}"
    );
    assert!(
        json.contains(&format!("\"energy_per_element_nj\":{expected_per_elem}")),
        "{json}"
    );
}

#[test]
fn sweep_recorded_spill_and_swap_counts_drive_the_energy_deltas() {
    // One instrumented sweep covers the three pressure regimes of the
    // high-pressure Blackscholes kernel; the energy model must charge the
    // regimes that move more data through the recorded counters.
    let workloads: Vec<SharedWorkload> = vec![Arc::new(Blackscholes::new(256))];
    let scenarios = vec![
        ScenarioConfig::rg_lmul(Lmul::M1),
        ScenarioConfig::rg_lmul(Lmul::M8),
        ScenarioConfig::ava_x(8),
    ];
    let report = Sweep::grid(workloads, scenarios.clone())
        .runner()
        .threads(1)
        .run();
    let [rg1, rg8, ava8] = &report.reports[..] else {
        panic!("expected three points");
    };
    assert!(rg1.validated && rg8.validated && ava8.validated);

    // The sweep records the traffic sources: RG-LMUL8 spills (compiler),
    // AVA X8 swaps (hardware), RG-LMUL1 does neither.
    assert_eq!(rg1.vpu.spill_ops() + rg1.vpu.swap_ops(), 0);
    assert!(rg8.vpu.spill_ops() > 0 && rg8.vpu.swap_ops() == 0);
    assert!(ava8.vpu.swap_ops() > 0 && ava8.vpu.spill_ops() == 0);

    let params = EnergyParams::default();
    let e_rg1 = energy_breakdown(rg1, &scenarios[0].vpu_config(), &params);
    let e_rg8 = energy_breakdown(rg8, &scenarios[1].vpu_config(), &params);
    let e_ava8 = energy_breakdown(ava8, &scenarios[2].vpu_config(), &params);
    // Spill traffic is extra memory-system plus register-file work.
    assert!(
        e_rg8.l2_dynamic + e_rg8.vrf_dynamic > e_rg1.l2_dynamic + e_rg1.vrf_dynamic,
        "spill-heavy RG-LMUL8 must cost more dynamic energy than spill-free RG-LMUL1"
    );
    // Swap traffic shows up the same way on the AVA side: the memory
    // instructions the hardware added are priced by the same counters.
    assert!(ava8.memory_instructions() > rg1.memory_instructions());
    assert!(
        e_ava8.l2_dynamic + e_ava8.vrf_dynamic > e_rg1.l2_dynamic + e_rg1.vrf_dynamic,
        "swap-heavy AVA X8 must cost more dynamic energy than the swap-free baseline"
    );
}
