//! Quickstart: simulate one kernel on the baseline short-vector machine and
//! on AVA reconfigured for long vectors, and compare. The two runs are
//! declared as a tiny sweep grid and executed by the parallel engine.
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::Arc;

use ava::sim::{ScenarioConfig, Sweep};
use ava::workloads::{Axpy, SharedWorkload, Workload};

fn main() {
    let workload = Axpy::new(4096);
    println!(
        "workload: {} ({}), {} elements",
        workload.name(),
        workload.domain(),
        4096
    );

    let workloads: Vec<SharedWorkload> = vec![Arc::new(workload)];
    let systems = vec![ScenarioConfig::native_x(1), ScenarioConfig::ava_x(8)];
    let sweep = Sweep::grid(workloads, systems).runner().run();
    let reports = &sweep.reports;

    for r in reports {
        println!(
            "{:<10} {:>8} cycles  {:>6} vector instrs  swaps={}  validated={}",
            r.config,
            r.cycles,
            r.vpu.issued_instrs(),
            r.vpu.swap_ops(),
            r.validated
        );
    }
    println!(
        "reconfiguring the same 8 KB register file from MVL=16 to MVL=128 gives {:.2}x",
        reports[0].cycles as f64 / reports[1].cycles as f64
    );
    println!(
        "sweep: {} points in {:.1} ms on {} threads ({} compiles, {} cache hits)",
        reports.len(),
        sweep.wall_ns as f64 / 1e6,
        sweep.threads,
        sweep.cache_misses,
        sweep.cache_hits,
    );
}
