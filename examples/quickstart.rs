//! Quickstart: simulate one kernel on the baseline short-vector machine and
//! on AVA reconfigured for long vectors, and compare.
//!
//! Run with `cargo run --release --example quickstart`.

use ava::sim::{run_workload, SystemConfig};
use ava::workloads::{Axpy, Workload};

fn main() {
    let workload = Axpy::new(4096);
    println!(
        "workload: {} ({}), {} elements",
        workload.name(),
        workload.domain(),
        4096
    );

    let baseline = run_workload(&workload, &SystemConfig::native_x(1));
    let ava_long = run_workload(&workload, &SystemConfig::ava_x(8));

    for r in [&baseline, &ava_long] {
        println!(
            "{:<10} {:>8} cycles  {:>6} vector instrs  swaps={}  validated={}",
            r.config,
            r.cycles,
            r.vpu.issued_instrs(),
            r.vpu.swap_ops(),
            r.validated
        );
    }
    println!(
        "reconfiguring the same 8 KB register file from MVL=16 to MVL=128 gives {:.2}x",
        baseline.cycles as f64 / ava_long.cycles as f64
    );
}
