//! Register Grouping vs AVA: reproduce the paper's comparison between the
//! RISC-V LMUL mechanism (compiler spill code, fewer architectural
//! registers) and the AVA hardware swap mechanism on the high-pressure
//! Blackscholes kernel. All seven runs form one sweep grid.
//!
//! Run with `cargo run --release --example rg_vs_ava`.

use std::sync::Arc;

use ava::isa::Lmul;
use ava::sim::{ScenarioConfig, Sweep};
use ava::workloads::{Blackscholes, SharedWorkload};

fn main() {
    let workloads: Vec<SharedWorkload> = vec![Arc::new(Blackscholes::new(1024))];
    // Baseline first, then (RG, AVA) pairs per grouping factor.
    let systems = vec![
        ScenarioConfig::native_x(1),
        ScenarioConfig::rg_lmul(Lmul::M2),
        ScenarioConfig::ava_x(2),
        ScenarioConfig::rg_lmul(Lmul::M4),
        ScenarioConfig::ava_x(4),
        ScenarioConfig::rg_lmul(Lmul::M8),
        ScenarioConfig::ava_x(8),
    ];
    let sweep = Sweep::grid(workloads, systems).runner().run();
    let reports = &sweep.reports;

    let baseline = &reports[0];
    println!("baseline NATIVE X1: {} cycles\n", baseline.cycles);
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} | {:<10} {:>9} {:>9} {:>9} {:>9}",
        "RG config",
        "cycles",
        "speedup",
        "spill-ld",
        "spill-st",
        "AVA config",
        "cycles",
        "speedup",
        "swap-ld",
        "swap-st"
    );
    for pair in reports[1..].chunks(2) {
        let (r_rg, r_ava) = (&pair[0], &pair[1]);
        println!(
            "{:<12} {:>9} {:>9.2} {:>9} {:>9} | {:<10} {:>9} {:>9.2} {:>9} {:>9}",
            r_rg.config,
            r_rg.cycles,
            baseline.cycles as f64 / r_rg.cycles as f64,
            r_rg.vpu.spill_loads,
            r_rg.vpu.spill_stores,
            r_ava.config,
            r_ava.cycles,
            baseline.cycles as f64 / r_ava.cycles as f64,
            r_ava.vpu.swap_loads,
            r_ava.vpu.swap_stores,
        );
    }
    println!("\nRG loses architectural registers to grouping, so the compiler spills;");
    println!("AVA keeps all 32 and resolves pressure in hardware with swap operations.");
    println!(
        "(sweep ran {} points in {:.1} ms; the scheduler's cost estimates ranged {}..{})",
        reports.len(),
        sweep.wall_ns as f64 / 1e6,
        sweep
            .points
            .iter()
            .map(|p| p.cost_estimate)
            .min()
            .unwrap_or(0),
        sweep
            .points
            .iter()
            .map(|p| p.cost_estimate)
            .max()
            .unwrap_or(0),
    );
}
