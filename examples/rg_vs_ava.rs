//! Register Grouping vs AVA: reproduce the paper's comparison between the
//! RISC-V LMUL mechanism (compiler spill code, fewer architectural
//! registers) and the AVA hardware swap mechanism on the high-pressure
//! Blackscholes kernel.
//!
//! Run with `cargo run --release --example rg_vs_ava`.

use ava::isa::Lmul;
use ava::sim::{run_workload, SystemConfig};
use ava::workloads::Blackscholes;

fn main() {
    let workload = Blackscholes::new(1024);
    let pairs = [
        (SystemConfig::rg_lmul(Lmul::M2), SystemConfig::ava_x(2)),
        (SystemConfig::rg_lmul(Lmul::M4), SystemConfig::ava_x(4)),
        (SystemConfig::rg_lmul(Lmul::M8), SystemConfig::ava_x(8)),
    ];
    let baseline = run_workload(&workload, &SystemConfig::native_x(1));
    println!("baseline NATIVE X1: {} cycles\n", baseline.cycles);
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} | {:<10} {:>9} {:>9} {:>9} {:>9}",
        "RG config", "cycles", "speedup", "spill-ld", "spill-st", "AVA config", "cycles", "speedup", "swap-ld", "swap-st"
    );
    for (rg, ava) in pairs {
        let r_rg = run_workload(&workload, &rg);
        let r_ava = run_workload(&workload, &ava);
        println!(
            "{:<12} {:>9} {:>9.2} {:>9} {:>9} | {:<10} {:>9} {:>9.2} {:>9} {:>9}",
            r_rg.config,
            r_rg.cycles,
            baseline.cycles as f64 / r_rg.cycles as f64,
            r_rg.vpu.spill_loads,
            r_rg.vpu.spill_stores,
            r_ava.config,
            r_ava.cycles,
            baseline.cycles as f64 / r_ava.cycles as f64,
            r_ava.vpu.swap_loads,
            r_ava.vpu.swap_stores,
        );
    }
    println!("\nRG loses architectural registers to grouping, so the compiler spills;");
    println!("AVA keeps all 32 and resolves pressure in hardware with swap operations.");
}
