//! Experiment-manifest quickstart: author a manifest as a JSON string,
//! parse it into an [`ExperimentSpec`], scale it to smoke size and execute
//! it through the same driver the `experiments` binary (and the figure
//! shims) use. The equivalent file-based invocation is
//! `cargo run --release -p ava-bench --bin experiments -- --spec
//! experiments/sensitivity_vvr.json --scale-down`.
//!
//! Run with `cargo run --release --example manifest_run`.

use ava_bench::cli::BenchArgs;
use ava_bench::driver;
use ava_bench::spec::ExperimentSpec;

fn main() {
    let manifest = r#"{
        "name": "VVR rename-pool sensitivity over the axpy kernel",
        "artefact": "sensitivity",
        "workloads": [{"name": "axpy", "n": 8192}],
        "axes": {"mvl": [128, 256], "l2_kib": [512], "vvrs": [32, 64]},
        "output": {"kind": "all"}
    }"#;

    let spec = ExperimentSpec::parse("<inline>", manifest).expect("manifest must parse");
    let args = BenchArgs::from_args(Vec::new()).expect("empty CLI always parses");
    let run = driver::execute(&spec, &args).expect("experiment must run");
    print!("{}", run.stdout);

    // The driver also hands back the machine-readable document that
    // `--json` would write; schema errors, by contrast, are diagnostics
    // with byte offsets — never panics.
    let doc = run.document.to_string();
    println!("JSON document: {} bytes", doc.len());
    let err = ExperimentSpec::parse("<inline>", r#"{"artefact": "fig3", "axes": {}}"#)
        .expect_err("axes do not apply to fig3");
    println!("example diagnostic: {err}");
}
