//! Energy and area report: evaluate one workload with the McPAT-style model
//! and the analytical post-PnR estimator, reproducing the flavour of
//! Figure 4 and Table V for a single kernel. The three simulations are a
//! sweep grid; the physical models run on each report afterwards.
//!
//! Run with `cargo run --release --example energy_report`.

use std::sync::Arc;

use ava::energy::{energy_breakdown, pnr_estimate, system_area, EnergyParams};
use ava::sim::{ScenarioConfig, Sweep};
use ava::workloads::{SharedWorkload, Somier};

fn main() {
    let workloads: Vec<SharedWorkload> = vec![Arc::new(Somier::new(4096))];
    let systems = vec![
        ScenarioConfig::native_x(1),
        ScenarioConfig::native_x(8),
        ScenarioConfig::ava_x(8),
    ];
    let params = EnergyParams::default();
    let sweep = Sweep::grid(workloads, systems.clone()).runner().run();
    let reports = &sweep.reports;

    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>11} {:>9}",
        "config", "cycles", "VPU mm2", "L2 dyn mJ", "VRF dyn mJ", "VRF lk mJ", "total mJ", "WNS ns"
    );
    for (sys, report) in systems.iter().zip(reports) {
        assert!(report.validated, "{:?}", report.validation_error);
        let area = system_area(&sys.vpu_config());
        let energy = energy_breakdown(report, &sys.vpu_config(), &params);
        let pnr = pnr_estimate(&sys.vpu_config());
        println!(
            "{:<12} {:>9} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>11.3} {:>9.3}",
            report.config,
            report.cycles,
            area.vpu.total(),
            energy.l2_dynamic,
            energy.vrf_dynamic,
            energy.vrf_leakage,
            energy.total(),
            pnr.wns_ns,
        );
    }
    println!("\nAVA reaches long-vector performance with the 8 KB register file, so its");
    println!("VRF leakage and area stay at the short-vector design's level (Figure 4 / Table V).");
    for p in &sweep.points {
        println!(
            "  point {:<10} simulated in {:>7.2} ms on worker {}",
            p.config,
            p.wall_ns as f64 / 1e6,
            p.worker
        );
    }
}
