//! Energy and area report: evaluate one workload with the McPAT-style model
//! and the analytical post-PnR estimator, reproducing the flavour of
//! Figure 4 and Table V for a single kernel.
//!
//! Run with `cargo run --release --example energy_report`.

use ava::energy::{energy_breakdown, pnr_estimate, system_area, EnergyParams};
use ava::sim::{run_workload, SystemConfig};
use ava::workloads::Somier;

fn main() {
    let workload = Somier::new(4096);
    let params = EnergyParams::default();

    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>11} {:>9}",
        "config", "cycles", "VPU mm2", "L2 dyn mJ", "VRF dyn mJ", "VRF lk mJ", "total mJ", "WNS ns"
    );
    for sys in [
        SystemConfig::native_x(1),
        SystemConfig::native_x(8),
        SystemConfig::ava_x(8),
    ] {
        let report = run_workload(&workload, &sys);
        assert!(report.validated, "{:?}", report.validation_error);
        let area = system_area(&sys.vpu);
        let energy = energy_breakdown(&report, &sys.vpu, &params);
        let pnr = pnr_estimate(&sys.vpu);
        println!(
            "{:<12} {:>9} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>11.3} {:>9.3}",
            report.config,
            report.cycles,
            area.vpu.total(),
            energy.l2_dynamic,
            energy.vrf_dynamic,
            energy.vrf_leakage,
            energy.total(),
            pnr.wns_ns,
        );
    }
    println!("\nAVA reaches long-vector performance with the 8 KB register file, so its");
    println!("VRF leakage and area stay at the short-vector design's level (Figure 4 / Table V).");
}
