//! DLP sweep: run every workload on every AVA MVL configuration and print
//! how the best configuration depends on the application's data-level
//! parallelism (the core message of the paper). The whole experiment is one
//! declarative grid executed across all cores.
//!
//! Run with `cargo run --release --example dlp_sweep`.

use ava::sim::{ScenarioConfig, Sweep};
use ava::workloads::all_workloads_shared;

fn main() {
    let configs: Vec<ScenarioConfig> = [1, 2, 3, 4, 8]
        .iter()
        .map(|&n| ScenarioConfig::ava_x(n))
        .collect();
    let workloads = all_workloads_shared();
    let sweep = Sweep::grid(workloads.clone(), configs.clone())
        .runner()
        .run();
    let reports = &sweep.reports;

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10}   best",
        "workload", "AVA X1", "AVA X2", "AVA X3", "AVA X4", "AVA X8"
    );
    for (workload, runs) in workloads.iter().zip(reports.chunks(configs.len())) {
        for r in runs {
            assert!(r.validated, "{}: {:?}", r.config, r.validation_error);
        }
        let best = runs
            .iter()
            .min_by_key(|r| r.cycles)
            .map(|r| r.config.clone())
            .unwrap_or_default();
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10}   {}",
            workload.name(),
            runs[0].cycles,
            runs[1].cycles,
            runs[2].cycles,
            runs[3].cycles,
            runs[4].cycles,
            best
        );
    }
    println!("\nHigh-DLP kernels want the longest MVL; the fixed-VL LavaMD2 peaks at X3;");
    println!("every configuration runs on the same 8 KB physical register file.");
    // The cost-sorted scheduler started the most expensive points first;
    // busy/wall shows the effective parallelism it achieved.
    println!(
        "sweep: {:.1} ms wall, {:.1} ms busy ({:.1}x effective on {} threads), {} compiles deduplicated to {}",
        sweep.wall_ns as f64 / 1e6,
        sweep.busy_ns() as f64 / 1e6,
        sweep.busy_ns() as f64 / sweep.wall_ns.max(1) as f64,
        sweep.threads,
        sweep.cache_hits + sweep.cache_misses,
        sweep.cache_misses,
    );
}
