//! DLP sweep: run every workload on every AVA MVL configuration and print
//! how the best configuration depends on the application's data-level
//! parallelism (the core message of the paper).
//!
//! Run with `cargo run --release --example dlp_sweep`.

use ava::sim::{run_workload, SystemConfig};
use ava::workloads::all_workloads;

fn main() {
    let configs: Vec<SystemConfig> = [1, 2, 3, 4, 8].iter().map(|&n| SystemConfig::ava_x(n)).collect();

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10}   best",
        "workload", "AVA X1", "AVA X2", "AVA X3", "AVA X4", "AVA X8"
    );
    for workload in all_workloads() {
        let cycles: Vec<u64> = configs
            .iter()
            .map(|c| {
                let r = run_workload(workload.as_ref(), c);
                assert!(r.validated, "{}: {:?}", r.config, r.validation_error);
                r.cycles
            })
            .collect();
        let best = cycles
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .map(|(i, _)| configs[i].label().to_string())
            .unwrap_or_default();
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10}   {}",
            workload.name(),
            cycles[0],
            cycles[1],
            cycles[2],
            cycles[3],
            cycles[4],
            best
        );
    }
    println!("\nHigh-DLP kernels want the longest MVL; the fixed-VL LavaMD2 peaks at X3;");
    println!("every configuration runs on the same 8 KB physical register file.");
}
